package eqrel

import (
	"testing"
	"testing/quick"

	"sti/internal/value"
)

func drain(it *Iter) [][2]value.Value {
	var out [][2]value.Value
	for {
		t, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, [2]value.Value{t[0], t[1]})
	}
}

func TestEmpty(t *testing.T) {
	r := New()
	if !r.Empty() || r.Size() != 0 {
		t.Fatal("new relation not empty")
	}
	if r.Contains(1, 1) {
		t.Error("empty relation contains (1,1)")
	}
	if got := drain(r.Iter()); len(got) != 0 {
		t.Errorf("empty relation yielded %v", got)
	}
}

func TestSelfPair(t *testing.T) {
	r := New()
	if !r.Insert(5, 5) {
		t.Fatal("insert (5,5) not new")
	}
	if r.Size() != 1 {
		t.Fatalf("size = %d, want 1 (reflexive pair)", r.Size())
	}
	if !r.Contains(5, 5) {
		t.Fatal("missing reflexive pair")
	}
	if r.Insert(5, 5) {
		t.Fatal("duplicate insert reported new")
	}
}

func TestClosureSemantics(t *testing.T) {
	r := New()
	r.Insert(1, 2)
	// {1,2}: pairs (1,1),(1,2),(2,1),(2,2)
	if r.Size() != 4 {
		t.Fatalf("size = %d, want 4", r.Size())
	}
	for _, p := range [][2]value.Value{{1, 1}, {1, 2}, {2, 1}, {2, 2}} {
		if !r.Contains(p[0], p[1]) {
			t.Fatalf("missing implied pair %v", p)
		}
	}
	r.Insert(3, 4)
	if r.Size() != 8 {
		t.Fatalf("size = %d, want 8", r.Size())
	}
	if r.Contains(1, 3) {
		t.Fatal("(1,3) should not be implied yet")
	}
	// Transitive merge: 2~3 merges both classes -> 4 elements -> 16 pairs.
	r.Insert(2, 3)
	if r.Size() != 16 {
		t.Fatalf("size after merge = %d, want 16", r.Size())
	}
	if !r.Contains(1, 4) || !r.Contains(4, 1) {
		t.Fatal("transitivity broken")
	}
}

func TestIterationOrderAndCompleteness(t *testing.T) {
	r := New()
	r.Insert(3, 1)
	r.Insert(7, 3)
	r.Insert(10, 10)
	// Classes: {1,3,7}, {10} -> 9 + 1 = 10 pairs.
	got := drain(r.Iter())
	if len(got) != 10 {
		t.Fatalf("enumerated %d pairs, want 10", len(got))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
			t.Fatalf("out of order: %v then %v", a, b)
		}
	}
	want := [2]value.Value{1, 1}
	if got[0] != want {
		t.Fatalf("first pair = %v, want %v", got[0], want)
	}
}

func TestPrefixFirst(t *testing.T) {
	r := New()
	r.Insert(2, 5)
	r.Insert(5, 9)
	got := drain(r.PrefixFirst(5))
	if len(got) != 3 {
		t.Fatalf("PrefixFirst(5): %d pairs, want 3", len(got))
	}
	wantSeconds := []value.Value{2, 5, 9}
	for i, p := range got {
		if p[0] != 5 || p[1] != wantSeconds[i] {
			t.Fatalf("pair %d = %v", i, p)
		}
	}
	if got := drain(r.PrefixFirst(42)); len(got) != 0 {
		t.Fatalf("unknown element yielded %v", got)
	}
}

func TestClear(t *testing.T) {
	r := New()
	r.Insert(1, 2)
	r.Clear()
	if !r.Empty() || r.Contains(1, 2) {
		t.Fatal("clear failed")
	}
	r.Insert(1, 2)
	if r.Size() != 4 {
		t.Fatalf("size after clear+insert = %d", r.Size())
	}
}

func TestClassSorted(t *testing.T) {
	r := New()
	r.Insert(9, 1)
	r.Insert(1, 5)
	cls := r.Class(5)
	want := []value.Value{1, 5, 9}
	if len(cls) != 3 {
		t.Fatalf("class = %v", cls)
	}
	for i := range want {
		if cls[i] != want[i] {
			t.Fatalf("class = %v, want %v", cls, want)
		}
	}
	if r.Class(77) != nil {
		t.Fatal("unknown element has a class")
	}
}

// TestQuickSizeInvariant: Size always equals the sum of squared class sizes,
// and equals the number of enumerated pairs.
func TestQuickSizeInvariant(t *testing.T) {
	f := func(raw []uint32) bool {
		r := New()
		for i := 0; i+1 < len(raw); i += 2 {
			r.Insert(raw[i]%16, raw[i+1]%16)
		}
		return r.Size() == len(drain(r.Iter()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEquivalence: Contains agrees with a transitive-closure model.
func TestQuickEquivalence(t *testing.T) {
	f := func(raw []uint32) bool {
		r := New()
		// Model: naive union-find by maps.
		rep := map[value.Value]value.Value{}
		var find func(x value.Value) value.Value
		find = func(x value.Value) value.Value {
			if rep[x] == x {
				return x
			}
			root := find(rep[x])
			rep[x] = root
			return root
		}
		for i := 0; i+1 < len(raw); i += 2 {
			a, b := raw[i]%12, raw[i+1]%12
			r.Insert(a, b)
			if _, ok := rep[a]; !ok {
				rep[a] = a
			}
			if _, ok := rep[b]; !ok {
				rep[b] = b
			}
			rep[find(a)] = find(b)
		}
		for a := value.Value(0); a < 12; a++ {
			for b := value.Value(0); b < 12; b++ {
				_, aIn := rep[a]
				_, bIn := rep[b]
				want := aIn && bIn && find(a) == find(b)
				if r.Contains(a, b) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
