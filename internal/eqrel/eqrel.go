// Package eqrel implements the equivalence-relation store, modelled on
// Soufflé's union-find based binary relation (Nappa et al., PACT 2019;
// paper §2). Inserting a pair (x, y) makes x and y equivalent; the relation
// then *contains* every pair implied by reflexivity, symmetry, and
// transitivity. A handful of explicit inserts can therefore represent a
// quadratic number of tuples.
//
// Iteration order is lexicographic over the implied pair set, matching the
// natural order contract of the other index structures. Read operations
// (Contains, Class, iteration) do not mutate the structure, so they are
// safe to run concurrently with each other; mutation requires external
// synchronization, like the other stores.
package eqrel

import (
	"sort"

	"sti/internal/value"
)

// Rel is an equivalence relation over 32-bit values. The zero value is not
// usable; call New.
type Rel struct {
	parent  map[value.Value]value.Value
	rank    map[value.Value]int
	members map[value.Value][]value.Value // root -> sorted class members
	elems   []value.Value                 // all elements, sorted
	size    int                           // implied pair count: sum over classes of |c|^2
}

// New returns an empty equivalence relation.
func New() *Rel {
	return &Rel{
		parent:  make(map[value.Value]value.Value),
		rank:    make(map[value.Value]int),
		members: make(map[value.Value][]value.Value),
	}
}

// Size reports the number of implied pairs.
func (r *Rel) Size() int { return r.size }

// Empty reports whether the relation holds no pairs.
func (r *Rel) Empty() bool { return r.size == 0 }

// Clear removes everything.
func (r *Rel) Clear() { *r = *New() }

// makeSet registers x if unseen and returns its root.
func (r *Rel) makeSet(x value.Value) value.Value {
	if _, ok := r.parent[x]; !ok {
		r.parent[x] = x
		r.rank[x] = 0
		r.members[x] = []value.Value{x}
		i := sort.Search(len(r.elems), func(i int) bool { return r.elems[i] >= x })
		r.elems = append(r.elems, 0)
		copy(r.elems[i+1:], r.elems[i:])
		r.elems[i] = x
		r.size++ // (x, x)
		return x
	}
	return r.findCompress(x)
}

// findCompress returns x's root with path halving (mutating; used only on
// the insert path).
func (r *Rel) findCompress(x value.Value) value.Value {
	for r.parent[x] != x {
		r.parent[x] = r.parent[r.parent[x]]
		x = r.parent[x]
	}
	return x
}

// find returns x's root without mutating (safe for concurrent readers).
func (r *Rel) find(x value.Value) value.Value {
	for r.parent[x] != x {
		x = r.parent[x]
	}
	return x
}

// Insert makes x and y equivalent, reporting whether any new pair was added.
func (r *Rel) Insert(x, y value.Value) bool {
	before := len(r.parent)
	rx := r.makeSet(x)
	ry := r.makeSet(y)
	added := len(r.parent) > before
	if rx == ry {
		return added
	}
	if r.rank[rx] < r.rank[ry] {
		rx, ry = ry, rx
	}
	r.parent[ry] = rx
	if r.rank[rx] == r.rank[ry] {
		r.rank[rx]++
	}
	a, b := r.members[rx], r.members[ry]
	r.members[rx] = mergeSorted(a, b)
	delete(r.members, ry)
	r.size += 2 * len(a) * len(b)
	return true
}

// InsertPairs makes every (x, y) pair packed back to back in flat
// equivalent, reporting how many of the insert operations added new
// information: the bulk entry point of the staging-buffer merge path.
func (r *Rel) InsertPairs(flat []value.Value) int {
	added := 0
	for i := 0; i+1 < len(flat); i += 2 {
		if r.Insert(flat[i], flat[i+1]) {
			added++
		}
	}
	return added
}

// mergeSorted merges two sorted slices into a fresh sorted slice.
func mergeSorted(a, b []value.Value) []value.Value {
	out := make([]value.Value, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Contains reports whether the pair (x, y) is implied.
func (r *Rel) Contains(x, y value.Value) bool {
	if _, ok := r.parent[x]; !ok {
		return false
	}
	if _, ok := r.parent[y]; !ok {
		return false
	}
	return r.find(x) == r.find(y)
}

// Class returns the sorted members of x's class, or nil if x is unknown.
func (r *Rel) Class(x value.Value) []value.Value {
	if _, ok := r.parent[x]; !ok {
		return nil
	}
	return r.members[r.find(x)]
}

// Iter enumerates all implied pairs in lexicographic order.
func (r *Rel) Iter() *Iter {
	return &Iter{rel: r, elems: r.elems}
}

// PrefixFirst enumerates, in order, all pairs whose first element is x.
func (r *Rel) PrefixFirst(x value.Value) *Iter {
	if _, ok := r.parent[x]; !ok {
		return &Iter{}
	}
	return &Iter{rel: r, elems: []value.Value{x}}
}

// Iter enumerates implied pairs. The yielded slice is reused between calls.
type Iter struct {
	rel   *Rel
	elems []value.Value // first components remaining (sorted)
	class []value.Value // current class members (second components)
	ei    int           // index into elems
	ci    int           // index into class
	first value.Value   // current first component
	cur   [2]value.Value
}

// Next returns the next pair, or ok=false when exhausted.
func (it *Iter) Next() ([]value.Value, bool) {
	for {
		if it.class != nil && it.ci < len(it.class) {
			it.cur[0] = it.first
			it.cur[1] = it.class[it.ci]
			it.ci++
			return it.cur[:], true
		}
		if it.ei >= len(it.elems) {
			return nil, false
		}
		x := it.elems[it.ei]
		it.ei++
		it.first = x
		it.class = it.rel.Class(x)
		it.ci = 0
	}
}
