// Package compile is the engine's "synthesizer" baseline: it compiles a RAM
// program into a tree of specialized Go closures ahead of execution, the
// role the synthesized C++ code plays in the paper's evaluation (§5).
//
// Where the interpreter dispatches on an opcode at every node visit and
// reads static information through shadow pointers, the closure compiler
// resolves *everything* once at compile time: concrete B-tree instances are
// type-asserted and captured, tuple orders are baked into the capture
// environment, arithmetic is monomorphized per operator and type, and the
// per-node switch disappears entirely. Execution is then just direct
// closure calls over the same de-specialized data structures the
// interpreter uses, so interpreter-vs-compiled ratios isolate exactly the
// interpretation overheads the paper measures.
package compile

import (
	"time"

	"sti/internal/eio"
	"sti/internal/ram"
	"sti/internal/ram/verify"
	"sti/internal/relation"
	"sti/internal/rtl"
	"sti/internal/symtab"
	"sti/internal/tuple"
)

// Machine is a compiled RAM program ready to run.
type Machine struct {
	prog *ram.Program
	st   *symtab.Table
	rels []*relation.Relation
	main stmtFn

	// Per-rule cumulative wall time, indexed by RuleID. Maintained
	// unconditionally: one clock pair per rule *evaluation* (not per
	// tuple), which is negligible, and it feeds the paper's per-rule
	// slowdown study (Fig 16).
	ruleTimes  []time.Duration
	ruleLabels []string
}

// RuleTime is one rule's cumulative evaluation time.
type RuleTime struct {
	RuleID int
	Label  string
	Time   time.Duration
}

// RuleTimes reports cumulative evaluation time per rule from the last Run.
func (m *Machine) RuleTimes() []RuleTime {
	var out []RuleTime
	for id, d := range m.ruleTimes {
		if d > 0 {
			out = append(out, RuleTime{RuleID: id, Label: m.ruleLabels[id], Time: d})
		}
	}
	return out
}

// rt is the runtime environment of one query (the compiled analog of the
// interpreter's context).
type rt struct {
	tuples []tuple.Tuple
	base   []tuple.Tuple
}

func newRT(widths []int32) *rt {
	r := &rt{
		tuples: make([]tuple.Tuple, len(widths)),
		base:   make([]tuple.Tuple, len(widths)),
	}
	for i, w := range widths {
		r.tuples[i] = make(tuple.Tuple, w)
		r.base[i] = r.tuples[i]
	}
	return r
}

// state carries statement-level execution state.
type state struct {
	io   eio.Handler
	exit bool
}

type (
	stmtFn func(*state)
	opFn   func(*rt)
	exprFn func(*rt) value32
	condFn func(*rt) bool
)

// value32 keeps closure signatures short.
type value32 = uint32

// New compiles the program. Compilation builds the runtime relations and
// the closure tree; its cost corresponds to the synthesizer's code
// generation (the C++ compile time is modelled separately by
// internal/codegen).
func New(prog *ram.Program, st *symtab.Table) *Machine {
	if verify.Debugging() {
		if err := verify.Check(prog, "compile.New"); err != nil {
			panic(err)
		}
	}
	m := &Machine{
		prog:       prog,
		st:         st,
		ruleTimes:  make([]time.Duration, prog.NumRules),
		ruleLabels: make([]string, prog.NumRules),
	}
	for _, rd := range prog.Relations {
		m.rels = append(m.rels, buildRelation(rd))
	}
	c := &compiler{m: m}
	m.main = c.compileStmt(prog.Main)
	return m
}

func buildRelation(rd *ram.Relation) *relation.Relation {
	rep := relation.BTree
	switch rd.Rep {
	case ram.RepBrie:
		rep = relation.Brie
	case ram.RepEqRel:
		rep = relation.EqRel
	}
	orders := rd.Orders
	if len(orders) == 0 {
		orders = []tuple.Order{tuple.Identity(rd.Arity)}
	}
	return relation.New(rd.Name, rep, rd.Arity, orders)
}

// Run executes the compiled program.
func (m *Machine) Run(io eio.Handler) (err error) {
	if io == nil {
		io = eio.NewMem()
	}
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*rtl.Error); ok {
				err = re
				return
			}
			panic(r)
		}
	}()
	m.main(&state{io: io})
	return nil
}

// Relation returns the runtime relation by name, or nil.
func (m *Machine) Relation(name string) *relation.Relation {
	for i, rd := range m.prog.Relations {
		if rd.Name == name {
			return m.rels[i]
		}
	}
	return nil
}

// Tuples returns all tuples of a relation in source order.
func (m *Machine) Tuples(name string) ([]tuple.Tuple, error) {
	rel := m.Relation(name)
	if rel == nil {
		return nil, &rtl.Error{Msg: "unknown relation " + name}
	}
	var out []tuple.Tuple
	it := rel.Scan()
	for {
		t, ok := it.Next()
		if !ok {
			return out, nil
		}
		out = append(out, tuple.Clone(t))
	}
}

// SymbolTable exposes the machine's symbol table.
func (m *Machine) SymbolTable() *symtab.Table { return m.st }
