package compile

import (
	"sti/internal/ram"
	"sti/internal/ram/verify"
	"sti/internal/symtab"
	"sti/internal/tuple"
)

// CompileCondition builds a dispatch-free closure for a RAM condition whose
// leaves are constraints (no relation probes), for the interpreter's
// hand-crafted super-instructions (paper §5.2: fusing a hot filter's many
// small dispatches into a single instruction). coords carries the storage
// order of each bound tuple so element accesses are rewritten exactly as
// the interpreter tree rewrites them.
//
// Returns ok=false when the condition touches relations (emptiness or
// existence checks), which stay on the interpreter's regular path.
func CompileCondition(cond ram.Condition, st *symtab.Table, coords map[int32]tuple.Order) (func([]tuple.Tuple) bool, bool) {
	if !fusible(cond) {
		return nil, false
	}
	// In ramverify debug mode, check the condition against the (partial)
	// tuple scope before compiling: a fused closure with an out-of-bounds
	// element read would otherwise fail as a silent wrong answer or an
	// index panic mid-fixpoint.
	if verify.Debugging() {
		arities := make(map[int]int, len(coords))
		for tid, order := range coords {
			arities[int(tid)] = len(order)
		}
		if diags := verify.FusedCondition(cond, arities); len(diags) > 0 {
			panic(&verify.Error{Stage: "compile.CompileCondition", Diags: diags})
		}
	}
	c := &compiler{m: &Machine{st: st}, coords: map[int32]tuple.Order{}}
	for k, v := range coords {
		c.coords[k] = v
	}
	fn := c.compileCond(cond)
	// Reuse one runtime environment across calls: the closure is invoked
	// from a single-threaded interpreter loop, and a fresh allocation per
	// filter evaluation would dwarf the dispatch savings.
	env := &rt{}
	return func(tuples []tuple.Tuple) bool {
		env.tuples = tuples
		return fn(env)
	}, true
}

// Fusible reports whether a condition can be compiled by CompileCondition.
func Fusible(cond ram.Condition) bool { return fusible(cond) }

func fusible(cond ram.Condition) bool {
	switch cond := cond.(type) {
	case *ram.And:
		return fusible(cond.L) && fusible(cond.R)
	case *ram.Not:
		return fusible(cond.C)
	case *ram.Constraint:
		return true
	default:
		return false
	}
}
