package compile

import (
	"fmt"
	"time"

	"sti/internal/brie"
	"sti/internal/eqrel"
	"sti/internal/ram"
	"sti/internal/relation"
	"sti/internal/rtl"
	"sti/internal/tuple"
	"sti/internal/value"
)

// compiler lowers RAM into closures. Tuple reordering is always static
// (encoded coordinates), matching the synthesized code the paper compares
// against.
type compiler struct {
	m      *Machine
	coords map[int32]tuple.Order
}

func (c *compiler) relation(r *ram.Relation) *relation.Relation {
	return c.m.rels[r.ID]
}

func (c *compiler) compileStmt(s ram.Statement) stmtFn {
	switch s := s.(type) {
	case *ram.Sequence:
		stmts := make([]stmtFn, len(s.Stmts))
		for i, st := range s.Stmts {
			stmts[i] = c.compileStmt(st)
		}
		return func(st *state) {
			for _, f := range stmts {
				f(st)
				if st.exit {
					return
				}
			}
		}
	case *ram.Loop:
		body := c.compileStmt(s.Body)
		return func(st *state) {
			for {
				body(st)
				if st.exit {
					st.exit = false
					return
				}
			}
		}
	case *ram.Exit:
		cond := c.compileCond(s.Cond)
		return func(st *state) {
			if cond(nil) {
				st.exit = true
			}
		}
	case *ram.Query:
		c.coords = map[int32]tuple.Order{}
		widths := make([]int32, s.NumTuples)
		c.measureWidths(s.Root, widths)
		root := c.compileOp(s.Root)
		id := s.RuleID
		c.m.ruleLabels[id] = s.Label
		times := c.m.ruleTimes
		return func(st *state) {
			start := time.Now()
			root(newRT(widths))
			times[id] += time.Since(start)
		}
	case *ram.Clear:
		rel := c.relation(s.Rel)
		return func(*state) { rel.Clear() }
	case *ram.Swap:
		a, b := c.relation(s.A), c.relation(s.B)
		return func(*state) { a.SwapContents(b) }
	case *ram.Merge:
		dst, src := c.relation(s.Dst), c.relation(s.Src)
		return func(*state) {
			it := src.Scan()
			for {
				t, ok := it.Next()
				if !ok {
					return
				}
				dst.Insert(t)
			}
		}
	case *ram.IO:
		rel := c.relation(s.Rel)
		decl := s.Rel
		switch s.Kind {
		case ram.IOLoad:
			return func(st *state) {
				err := st.io.Load(decl, func(t tuple.Tuple) error {
					rel.Insert(t)
					return nil
				})
				if err != nil {
					rtl.Fail("loading %s: %v", rel.Name, err)
				}
			}
		case ram.IOStore:
			return func(st *state) {
				if err := st.io.Store(decl, rel.Scan()); err != nil {
					rtl.Fail("storing %s: %v", rel.Name, err)
				}
			}
		default:
			return func(st *state) {
				if err := st.io.PrintSize(decl, rel.Size()); err != nil {
					rtl.Fail("printsize %s: %v", rel.Name, err)
				}
			}
		}
	case *ram.LogTimer:
		return c.compileStmt(s.Stmt)
	default:
		panic(fmt.Sprintf("compile: unknown RAM statement %T", s))
	}
}

// measureWidths records each tuple slot's width.
func (c *compiler) measureWidths(o ram.Operation, widths []int32) {
	switch o := o.(type) {
	case *ram.Scan:
		widths[o.TupleID] = int32(o.Rel.Arity)
		c.measureWidths(o.Nested, widths)
	case *ram.IndexScan:
		widths[o.TupleID] = int32(o.Rel.Arity)
		c.measureWidths(o.Nested, widths)
	case *ram.Choice:
		widths[o.TupleID] = int32(o.Rel.Arity)
		c.measureWidths(o.Nested, widths)
	case *ram.IndexChoice:
		widths[o.TupleID] = int32(o.Rel.Arity)
		c.measureWidths(o.Nested, widths)
	case *ram.Filter:
		c.measureWidths(o.Nested, widths)
	case *ram.Aggregate:
		w := int32(o.Rel.Arity)
		if w < 1 {
			w = 1
		}
		widths[o.TupleID] = w
		c.measureWidths(o.Nested, widths)
	case *ram.Project:
	default:
		panic(fmt.Sprintf("compile: unknown RAM operation %T", o))
	}
}

func (c *compiler) compileOp(o ram.Operation) opFn {
	switch o := o.(type) {
	case *ram.Scan:
		rel := c.relation(o.Rel)
		idx := rel.Primary()
		tid := int32(o.TupleID)
		c.bindCoords(tid, idx.Order())
		body := c.compileOp(o.Nested)
		switch rel.Rep() {
		case relation.BTree:
			return buildScanBT(relation.Impl(idx), tid, body)
		case relation.EqRel:
			er := relation.Impl(idx).(*eqrel.Rel)
			return func(r *rt) {
				it := er.Iter()
				slot := r.tuples[tid]
				for {
					t, ok := it.Next()
					if !ok {
						return
					}
					copy(slot, t)
					body(r)
				}
			}
		default: // brie
			tr := relation.Impl(idx).(*brie.Trie)
			return func(r *rt) {
				it := tr.Iter()
				slot := r.tuples[tid]
				for {
					t, ok := it.Next()
					if !ok {
						return
					}
					copy(slot, t)
					body(r)
				}
			}
		}

	case *ram.IndexScan:
		rel := c.relation(o.Rel)
		idx := rel.Index(o.IndexID)
		tid := int32(o.TupleID)
		pat := c.compilePattern(o.Pattern, idx.Order())
		c.bindCoords(tid, idx.Order())
		body := c.compileOp(o.Nested)
		switch rel.Rep() {
		case relation.BTree:
			return buildIndexScanBT(relation.Impl(idx), tid, int32(rel.Arity()), pat, body)
		case relation.EqRel:
			er := relation.Impl(idx).(*eqrel.Rel)
			if len(pat) >= 2 {
				p0, p1 := pat[0], pat[1]
				return func(r *rt) {
					a, b := p0(r), p1(r)
					if er.Contains(a, b) {
						slot := r.tuples[tid]
						slot[0], slot[1] = a, b
						body(r)
					}
				}
			}
			p0 := pat[0]
			return func(r *rt) {
				it := er.PrefixFirst(p0(r))
				slot := r.tuples[tid]
				for {
					t, ok := it.Next()
					if !ok {
						return
					}
					copy(slot, t)
					body(r)
				}
			}
		default: // brie
			tr := relation.Impl(idx).(*brie.Trie)
			k := len(pat)
			return func(r *rt) {
				var p [relation.MaxArity]value.Value
				for i, pf := range pat {
					p[i] = pf(r)
				}
				it := tr.Prefix(p[:k])
				slot := r.tuples[tid]
				for {
					t, ok := it.Next()
					if !ok {
						return
					}
					copy(slot, t)
					body(r)
				}
			}
		}

	case *ram.Choice, *ram.IndexChoice:
		// Choices are not emitted by the current translator; a generic
		// adapter-backed fallback keeps the backend total.
		return c.compileChoice(o)

	case *ram.Filter:
		cond := c.compileCond(o.Cond)
		body := c.compileOp(o.Nested)
		return func(r *rt) {
			if cond(r) {
				body(r)
			}
		}

	case *ram.Project:
		rel := c.relation(o.Rel)
		exprs := make([]exprFn, len(o.Exprs))
		for i, e := range o.Exprs {
			exprs[i] = c.compileExpr(e)
		}
		switch rel.Rep() {
		case relation.BTree:
			impls := make([]any, rel.NumIndexes())
			orders := make([]tuple.Order, rel.NumIndexes())
			for i := 0; i < rel.NumIndexes(); i++ {
				impls[i] = relation.Impl(rel.Index(i))
				orders[i] = rel.Index(i).Order()
			}
			return buildInsertBT(impls, orders, int32(rel.Arity()), exprs)
		case relation.EqRel:
			er := relation.Impl(rel.Primary()).(*eqrel.Rel)
			e0, e1 := exprs[0], exprs[1]
			return func(r *rt) {
				er.Insert(e0(r), e1(r))
			}
		default:
			arity := int32(rel.Arity())
			impls := make([]*brie.Trie, rel.NumIndexes())
			orders := make([]tuple.Order, rel.NumIndexes())
			for i := 0; i < rel.NumIndexes(); i++ {
				impls[i] = relation.Impl(rel.Index(i)).(*brie.Trie)
				orders[i] = rel.Index(i).Order()
			}
			return func(r *rt) {
				var src, enc [relation.MaxArity]value.Value
				for i, e := range exprs {
					src[i] = e(r)
				}
				for i, tr := range impls {
					orders[i].Encode(enc[:arity], src[:arity])
					tr.Insert(enc[:arity])
				}
			}
		}

	case *ram.Aggregate:
		rel := c.relation(o.Rel)
		var idx relation.Index
		if o.IndexID >= 0 {
			idx = rel.Index(o.IndexID)
		} else {
			idx = rel.Primary()
		}
		tid := int32(o.TupleID)
		pat := c.compilePattern(o.Pattern, idx.Order())
		c.bindCoords(tid, idx.Order())
		var cond condFn
		if o.Cond != nil {
			cond = c.compileCond(o.Cond)
		}
		var target exprFn
		if o.Target != nil {
			target = c.compileExpr(o.Target)
		}
		delete(c.coords, tid)
		body := c.compileOp(o.Nested)
		if rel.Rep() == relation.BTree {
			return buildAggregateBT(relation.Impl(idx), o.Kind, o.Type, tid, int32(rel.Arity()), pat, cond, target, body)
		}
		// Adapter-backed fallback for eqrel/brie aggregates.
		arity := int32(rel.Arity())
		k := len(pat)
		kind, typ := o.Kind, o.Type
		return func(r *rt) {
			r.tuples[tid] = r.base[tid]
			var p [relation.MaxArity]value.Value
			for i, pf := range pat {
				p[i] = pf(r)
			}
			it := idx.PrefixScan(p[:arity], k)
			slot := r.tuples[tid]
			var acc rtl.AggAcc
			acc.Init(kind, typ)
			for {
				t, ok := it.Next()
				if !ok {
					break
				}
				copy(slot, t)
				if cond != nil && !cond(r) {
					continue
				}
				var v value.Value
				if target != nil {
					v = target(r)
				}
				acc.Step(v)
			}
			if res, ok := acc.Finish(); ok {
				r.tuples[tid] = tuple.Tuple{res}
				body(r)
			}
		}

	default:
		panic(fmt.Sprintf("compile: unknown RAM operation %T", o))
	}
}

// compileChoice is the generic fallback for (index) choice operations.
func (c *compiler) compileChoice(o ram.Operation) opFn {
	switch o := o.(type) {
	case *ram.Choice:
		rel := c.relation(o.Rel)
		idx := rel.Primary()
		tid := int32(o.TupleID)
		c.bindCoords(tid, idx.Order())
		cond := c.compileChoiceCond(o.Cond)
		body := c.compileOp(o.Nested)
		return func(r *rt) {
			it := idx.Scan()
			for {
				t, ok := it.Next()
				if !ok {
					return
				}
				copy(r.tuples[tid], t)
				if cond(r) {
					body(r)
					return
				}
			}
		}
	case *ram.IndexChoice:
		rel := c.relation(o.Rel)
		idx := rel.Index(o.IndexID)
		tid := int32(o.TupleID)
		pat := c.compilePattern(o.Pattern, idx.Order())
		c.bindCoords(tid, idx.Order())
		cond := c.compileChoiceCond(o.Cond)
		body := c.compileOp(o.Nested)
		arity := int32(rel.Arity())
		k := len(pat)
		return func(r *rt) {
			var p [relation.MaxArity]value.Value
			for i, pf := range pat {
				p[i] = pf(r)
			}
			it := idx.PrefixScan(p[:arity], k)
			for {
				t, ok := it.Next()
				if !ok {
					return
				}
				copy(r.tuples[tid], t)
				if cond(r) {
					body(r)
					return
				}
			}
		}
	default:
		panic(fmt.Sprintf("compile: not a choice: %T", o))
	}
}

// compileChoiceCond compiles a choice condition, treating nil as true.
func (c *compiler) compileChoiceCond(cond ram.Condition) condFn {
	if cond == nil {
		return func(*rt) bool { return true }
	}
	return c.compileCond(cond)
}

func (c *compiler) bindCoords(tid int32, order tuple.Order) {
	if !order.IsIdentity() {
		c.coords[tid] = order
	}
}

// compilePattern lowers a source-coordinate pattern into encoded-prefix
// expression closures.
func (c *compiler) compilePattern(pattern []ram.Expr, order tuple.Order) []exprFn {
	var out []exprFn
	for i := 0; i < len(order); i++ {
		src := pattern[order[i]]
		if src == nil {
			break
		}
		out = append(out, c.compileExpr(src))
	}
	return out
}

func (c *compiler) compileCond(cond ram.Condition) condFn {
	switch cond := cond.(type) {
	case *ram.And:
		l, r := c.compileCond(cond.L), c.compileCond(cond.R)
		return func(rt *rt) bool { return l(rt) && r(rt) }
	case *ram.Not:
		inner := c.compileCond(cond.C)
		return func(rt *rt) bool { return !inner(rt) }
	case *ram.EmptinessCheck:
		rel := c.relation(cond.Rel)
		return func(*rt) bool { return rel.Empty() }
	case *ram.ExistenceCheck:
		rel := c.relation(cond.Rel)
		idx := rel.Index(cond.IndexID)
		pat := c.compilePattern(cond.Pattern, idx.Order())
		switch rel.Rep() {
		case relation.BTree:
			return buildExistsBT(relation.Impl(idx), int32(rel.Arity()), pat)
		case relation.EqRel:
			er := relation.Impl(idx).(*eqrel.Rel)
			switch len(pat) {
			case 0:
				return func(*rt) bool { return er.Size() > 0 }
			case 1:
				p0 := pat[0]
				return func(r *rt) bool { return er.Class(p0(r)) != nil }
			default:
				p0, p1 := pat[0], pat[1]
				return func(r *rt) bool { return er.Contains(p0(r), p1(r)) }
			}
		default:
			tr := relation.Impl(idx).(*brie.Trie)
			arity := rel.Arity()
			k := len(pat)
			if k == arity {
				return func(r *rt) bool {
					var p [relation.MaxArity]value.Value
					for i, pf := range pat {
						p[i] = pf(r)
					}
					return tr.Contains(p[:arity])
				}
			}
			return func(r *rt) bool {
				var p [relation.MaxArity]value.Value
				for i, pf := range pat {
					p[i] = pf(r)
				}
				return tr.HasPrefix(p[:k])
			}
		}
	case *ram.Constraint:
		l, r := c.compileExpr(cond.L), c.compileExpr(cond.R)
		return compileCompare(cond.Op, cond.Type, l, r)
	default:
		panic(fmt.Sprintf("compile: unknown RAM condition %T", cond))
	}
}

// compileCompare monomorphizes a comparison per operator and type.
func compileCompare(op ram.CmpOp, typ value.Type, l, r exprFn) condFn {
	switch op {
	case ram.CmpEQ:
		return func(rt *rt) bool { return l(rt) == r(rt) }
	case ram.CmpNE:
		return func(rt *rt) bool { return l(rt) != r(rt) }
	}
	if typ == value.Number {
		switch op {
		case ram.CmpLT:
			return func(rt *rt) bool { return int32(l(rt)) < int32(r(rt)) }
		case ram.CmpLE:
			return func(rt *rt) bool { return int32(l(rt)) <= int32(r(rt)) }
		case ram.CmpGT:
			return func(rt *rt) bool { return int32(l(rt)) > int32(r(rt)) }
		default:
			return func(rt *rt) bool { return int32(l(rt)) >= int32(r(rt)) }
		}
	}
	return func(rt *rt) bool { return rtl.Compare(op, typ, l(rt), r(rt)) }
}

func (c *compiler) compileExpr(e ram.Expr) exprFn {
	switch e := e.(type) {
	case *ram.Constant:
		v := e.Val
		return func(*rt) value.Value { return v }
	case *ram.TupleElement:
		tid := int32(e.TupleID)
		elem := int32(e.Elem)
		if order := c.coords[tid]; order != nil {
			elem = int32(order.Inverse()[int(elem)])
		}
		return func(r *rt) value.Value { return r.tuples[tid][elem] }
	case *ram.Intrinsic:
		return c.compileIntrinsic(e)
	default:
		panic(fmt.Sprintf("compile: unknown RAM expression %T", e))
	}
}

// compileIntrinsic monomorphizes functors: the hot signed-arithmetic
// operators get dedicated closures; the rest route through the shared
// runtime with the operator pre-bound.
func (c *compiler) compileIntrinsic(e *ram.Intrinsic) exprFn {
	args := make([]exprFn, len(e.Args))
	for i, a := range e.Args {
		args[i] = c.compileExpr(a)
	}
	st := c.m.st
	op, typ := e.Op, e.Type
	switch op {
	case ram.OpNeg:
		a := args[0]
		return func(r *rt) value.Value { return rtl.Neg(typ, a(r)) }
	case ram.OpBNot:
		a := args[0]
		return func(r *rt) value.Value { return rtl.BNot(typ, a(r)) }
	case ram.OpLNot:
		a := args[0]
		return func(r *rt) value.Value { return rtl.LNot(a(r)) }
	case ram.OpCat:
		return func(r *rt) value.Value {
			vals := make([]value.Value, len(args))
			for i, a := range args {
				vals[i] = a(r)
			}
			return rtl.Cat(st, vals...)
		}
	case ram.OpStrlen:
		a := args[0]
		return func(r *rt) value.Value { return rtl.Strlen(st, a(r)) }
	case ram.OpSubstr:
		a, b2, c2 := args[0], args[1], args[2]
		return func(r *rt) value.Value { return rtl.Substr(st, a(r), b2(r), c2(r)) }
	case ram.OpOrd:
		return args[0]
	case ram.OpToNumber:
		a := args[0]
		return func(r *rt) value.Value { return rtl.ToNumber(st, a(r)) }
	case ram.OpToString:
		a := args[0]
		return func(r *rt) value.Value { return rtl.ToString(st, a(r)) }
	case ram.OpMin, ram.OpMax:
		return func(r *rt) value.Value {
			acc := args[0](r)
			for _, a := range args[1:] {
				acc = rtl.Arith(op, typ, acc, a(r))
			}
			return acc
		}
	}
	l, r2 := args[0], args[1]
	if typ == value.Number {
		switch op {
		case ram.OpAdd:
			return func(r *rt) value.Value {
				return value.FromInt(value.AsInt(l(r)) + value.AsInt(r2(r)))
			}
		case ram.OpSub:
			return func(r *rt) value.Value {
				return value.FromInt(value.AsInt(l(r)) - value.AsInt(r2(r)))
			}
		case ram.OpMul:
			return func(r *rt) value.Value {
				return value.FromInt(value.AsInt(l(r)) * value.AsInt(r2(r)))
			}
		case ram.OpBAnd:
			return func(r *rt) value.Value {
				return value.FromInt(value.AsInt(l(r)) & value.AsInt(r2(r)))
			}
		case ram.OpBOr:
			return func(r *rt) value.Value {
				return value.FromInt(value.AsInt(l(r)) | value.AsInt(r2(r)))
			}
		}
	}
	return func(r *rt) value.Value { return rtl.Arith(op, typ, l(r), r2(r)) }
}
