package compile

import (
	"sti/internal/btree"
	"sti/internal/ram"
	"sti/internal/relation"
	"sti/internal/rtl"
	"sti/internal/tuple"
	"sti/internal/value"
)

// This file holds the generic typed builders: each returns a closure that
// captures the concrete B-tree instance(s), conversion glue, and
// sub-closures, so execution performs no dispatch at all. The generated
// dispatch_gen.go instantiates them per arity.

func makeScanBT[K btree.Key[K]](tree *btree.Tree[K], fromKey func(K, tuple.Tuple), tid int32, body opFn) opFn {
	return func(r *rt) {
		it := tree.Iter()
		slot := r.tuples[tid]
		for {
			k, ok := it.Next()
			if !ok {
				return
			}
			fromKey(k, slot)
			body(r)
		}
	}
}

// evalBounds fills the lo/hi arrays of a prefix search.
func evalBounds(r *rt, pat []exprFn, arity int32, lo, hi []value.Value) {
	for i, p := range pat {
		v := p(r)
		lo[i] = v
		hi[i] = v
	}
	for i := int32(len(pat)); i < arity; i++ {
		lo[i] = 0
		hi[i] = ^value.Value(0)
	}
}

func makeIndexScanBT[K btree.Key[K]](tree *btree.Tree[K], toKey func(tuple.Tuple) K, fromKey func(K, tuple.Tuple), tid, arity int32, pat []exprFn, body opFn) opFn {
	return func(r *rt) {
		var lo, hi [relation.MaxArity]value.Value
		evalBounds(r, pat, arity, lo[:], hi[:])
		it := tree.Range(toKey(lo[:arity]), toKey(hi[:arity]))
		slot := r.tuples[tid]
		for {
			k, ok := it.Next()
			if !ok {
				return
			}
			fromKey(k, slot)
			body(r)
		}
	}
}

func makeInsertBT[K btree.Key[K]](impls []any, orders []tuple.Order, toKey func(tuple.Tuple) K, arity int32, exprs []exprFn) opFn {
	trees := make([]*btree.Tree[K], len(impls))
	for i, impl := range impls {
		trees[i] = impl.(*btree.Tree[K])
	}
	return func(r *rt) {
		var src, enc [relation.MaxArity]value.Value
		for i, e := range exprs {
			src[i] = e(r)
		}
		for i, tree := range trees {
			orders[i].Encode(enc[:arity], src[:arity])
			tree.Insert(toKey(enc[:arity]))
		}
	}
}

func makeExistsBT[K btree.Key[K]](tree *btree.Tree[K], toKey func(tuple.Tuple) K, arity int32, pat []exprFn) condFn {
	switch {
	case len(pat) == int(arity):
		return func(r *rt) bool {
			var key [relation.MaxArity]value.Value
			for i, p := range pat {
				key[i] = p(r)
			}
			return tree.Contains(toKey(key[:arity]))
		}
	case len(pat) == 0:
		return func(*rt) bool { return tree.Size() > 0 }
	default:
		return func(r *rt) bool {
			var lo, hi [relation.MaxArity]value.Value
			evalBounds(r, pat, arity, lo[:], hi[:])
			it := tree.Range(toKey(lo[:arity]), toKey(hi[:arity]))
			_, ok := it.Next()
			return ok
		}
	}
}

func makeAggregateBT[K btree.Key[K]](tree *btree.Tree[K], toKey func(tuple.Tuple) K, fromKey func(K, tuple.Tuple), kind ram.AggKind, typ value.Type, tid, arity int32, pat []exprFn, cond condFn, target exprFn, body opFn) opFn {
	return func(r *rt) {
		r.tuples[tid] = r.base[tid]
		var it btree.Iter[K]
		if len(pat) == 0 {
			it = tree.Iter()
		} else {
			var lo, hi [relation.MaxArity]value.Value
			evalBounds(r, pat, arity, lo[:], hi[:])
			it = tree.Range(toKey(lo[:arity]), toKey(hi[:arity]))
		}
		slot := r.tuples[tid]
		var acc rtl.AggAcc
		acc.Init(kind, typ)
		for {
			k, ok := it.Next()
			if !ok {
				break
			}
			fromKey(k, slot)
			if cond != nil && !cond(r) {
				continue
			}
			var v value.Value
			if target != nil {
				v = target(r)
			}
			acc.Step(v)
		}
		if res, ok := acc.Finish(); ok {
			r.tuples[tid] = tuple.Tuple{res}
			body(r)
		}
	}
}
