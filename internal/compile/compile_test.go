package compile_test

import (
	"math/rand"
	"sort"
	"testing"

	"sti/internal/ast2ram"
	"sti/internal/compile"
	"sti/internal/eio"
	"sti/internal/interp"
	"sti/internal/parser"
	"sti/internal/ram"
	"sti/internal/sema"
	"sti/internal/symtab"
	"sti/internal/tuple"
	"sti/internal/value"
)

func compileSrc(t testing.TB, src string) (*ram.Program, *symtab.Table) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	an, errs := sema.Analyze(p)
	if len(errs) > 0 {
		t.Fatalf("sema: %v", errs)
	}
	st := symtab.New()
	rp, err := ast2ram.Translate(an, st)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	return rp, st
}

func memIO(facts map[string][]tuple.Tuple) *eio.Mem {
	io := eio.NewMem()
	for name, ts := range facts {
		for _, tp := range ts {
			io.Add(name, tp)
		}
	}
	return io
}

func sorted(ts []tuple.Tuple) []tuple.Tuple {
	sort.Slice(ts, func(i, j int) bool { return tuple.Compare(ts[i], ts[j]) < 0 })
	return ts
}

const tcSrc = `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.input edge
.output path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`

func TestTransitiveClosure(t *testing.T) {
	rp, st := compileSrc(t, tcSrc)
	m := compile.New(rp, st)
	io := eio.NewMem()
	for i := 0; i < 10; i++ {
		io.Add("edge", tuple.Tuple{value.Value(i), value.Value(i + 1)})
	}
	if err := m.Run(io); err != nil {
		t.Fatal(err)
	}
	ts, err := m.Tuples("path")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 55 {
		t.Fatalf("path = %d tuples", len(ts))
	}
	if !m.Relation("path").Contains(tuple.Tuple{0, 10}) {
		t.Fatal("missing (0,10)")
	}
}

func TestRuntimeErrorSurfaces(t *testing.T) {
	rp, st := compileSrc(t, `
.decl n(x:number)
.decl out(x:number)
n(0).
out(y) :- n(x), y = 1 / x.
`)
	m := compile.New(rp, st)
	if err := m.Run(nil); err == nil {
		t.Fatal("division by zero not reported")
	}
}

// equivalence runs a program through both backends and compares all
// relations.
func equivalence(t *testing.T, src string, facts map[string][]tuple.Tuple) {
	t.Helper()
	rp1, st1 := compileSrc(t, src)
	eng := interp.New(rp1, st1, interp.DefaultConfig())
	if err := eng.Run(memIO(facts)); err != nil {
		t.Fatalf("interp run: %v", err)
	}
	rp2, st2 := compileSrc(t, src)
	m := compile.New(rp2, st2)
	if err := m.Run(memIO(facts)); err != nil {
		t.Fatalf("compile run: %v", err)
	}
	for _, rd := range rp1.Relations {
		if rd.Aux {
			continue
		}
		a, err := eng.Tuples(rd.Name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.Tuples(rd.Name)
		if err != nil {
			t.Fatal(err)
		}
		a, b = sorted(a), sorted(b)
		if len(a) != len(b) {
			t.Fatalf("relation %s: interp %d tuples, compiled %d", rd.Name, len(a), len(b))
		}
		for i := range a {
			if tuple.Compare(a[i], b[i]) != 0 {
				t.Fatalf("relation %s differs at %d: %v vs %v", rd.Name, i, a[i], b[i])
			}
		}
	}
}

func TestEquivalenceKitchenSink(t *testing.T) {
	src := `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.decl node(x:number)
.decl unreached(x:number)
.decl deg(x:number, n:number)
.decl eq(x:number, y:number) eqrel
.decl trie(x:number, y:number) brie
.input edge
node(x) :- edge(x, _).
node(y) :- edge(_, y).
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
unreached(x) :- node(x), !path(1, x).
deg(x, n) :- node(x), n = count : { edge(x, _) }.
eq(x, y) :- edge(x, y), x < y.
trie(x, y) :- edge(x, y).
trie(x, z) :- trie(x, y), edge(y, z), z != x.
`
	facts := map[string][]tuple.Tuple{"edge": {
		{1, 2}, {2, 3}, {3, 4}, {4, 2}, {5, 6}, {6, 5}, {2, 7}, {7, 1},
	}}
	equivalence(t, src, facts)
}

func TestEquivalenceStringsAndAggregates(t *testing.T) {
	src := `
.decl w(s:symbol, n:number)
.decl out(s:symbol, n:number)
.decl best(n:number)
w("alpha", 3). w("beta", 5). w("gamma", 5).
out(cat(s, "-x"), n + strlen(s)) :- w(s, n).
best(m) :- m = max n : { w(_, n) }.
`
	equivalence(t, src, nil)
}

// TestEquivalenceRandomGraphs drives both backends over random graphs with
// a program mixing recursion, negation, and arithmetic.
func TestEquivalenceRandomGraphs(t *testing.T) {
	src := `
.decl edge(x:number, y:number)
.decl reach(x:number, y:number)
.decl far(x:number, y:number)
.decl weight(x:number, y:number, w:number)
.input edge
.input weight
reach(x, y) :- edge(x, y).
reach(x, z) :- reach(x, y), edge(y, z).
far(x, y) :- reach(x, y), !edge(x, y).
`
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		n := 8 + rng.Intn(8)
		var edges, weights []tuple.Tuple
		for i := 0; i < 2*n; i++ {
			a, b := value.Value(rng.Intn(n)), value.Value(rng.Intn(n))
			edges = append(edges, tuple.Tuple{a, b})
			weights = append(weights, tuple.Tuple{a, b, value.Value(rng.Intn(100))})
		}
		equivalence(t, src, map[string][]tuple.Tuple{"edge": edges, "weight": weights})
	}
}

func TestMultiIndexRelation(t *testing.T) {
	// Searches on both columns force two indexes on e.
	src := `
.decl e(x:number, y:number)
.decl a(x:number)
.decl b(x:number)
.decl fwd(x:number, y:number)
.decl bwd(x:number, y:number)
.input e
.input a
.input b
fwd(x, y) :- a(x), e(x, y).
bwd(x, y) :- b(y), e(x, y).
`
	facts := map[string][]tuple.Tuple{
		"e": {{1, 10}, {2, 20}, {1, 30}, {3, 10}},
		"a": {{1}},
		"b": {{10}},
	}
	equivalence(t, src, facts)
	rp, st := compileSrc(t, src)
	m := compile.New(rp, st)
	if err := m.Run(memIO(facts)); err != nil {
		t.Fatal(err)
	}
	fwd, _ := m.Tuples("fwd")
	bwd, _ := m.Tuples("bwd")
	if len(fwd) != 2 || len(bwd) != 2 {
		t.Fatalf("fwd=%v bwd=%v", fwd, bwd)
	}
}
