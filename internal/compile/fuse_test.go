package compile_test

import (
	"testing"

	"sti/internal/compile"
	"sti/internal/ram"
	"sti/internal/symtab"
	"sti/internal/tuple"
	"sti/internal/value"
)

func constraint(op ram.CmpOp, l, r ram.Expr) *ram.Constraint {
	return &ram.Constraint{Op: op, Type: value.Number, L: l, R: r}
}

func elem(tid, e int) ram.Expr { return &ram.TupleElement{TupleID: tid, Elem: e} }

func num(n int32) ram.Expr { return &ram.Constant{Val: value.FromInt(n)} }

func TestFusible(t *testing.T) {
	rel := &ram.Relation{Name: "r", Arity: 1}
	cases := []struct {
		cond ram.Condition
		want bool
	}{
		{constraint(ram.CmpLT, elem(0, 0), num(5)), true},
		{&ram.And{L: constraint(ram.CmpLT, elem(0, 0), num(5)), R: constraint(ram.CmpNE, elem(0, 0), num(3))}, true},
		{&ram.Not{C: constraint(ram.CmpEQ, elem(0, 0), num(1))}, true},
		{&ram.EmptinessCheck{Rel: rel}, false},
		{&ram.ExistenceCheck{Rel: rel, Pattern: []ram.Expr{num(1)}}, false},
		{&ram.And{L: constraint(ram.CmpLT, num(1), num(2)), R: &ram.EmptinessCheck{Rel: rel}}, false},
	}
	for i, tc := range cases {
		if got := compile.Fusible(tc.cond); got != tc.want {
			t.Errorf("case %d: Fusible = %v, want %v", i, got, tc.want)
		}
	}
}

func TestCompileConditionEvaluates(t *testing.T) {
	st := symtab.New()
	// t0.0 > 2 AND (t0.0 + t1.1) % 2 = 0
	cond := &ram.And{
		L: constraint(ram.CmpGT, elem(0, 0), num(2)),
		R: constraint(ram.CmpEQ,
			&ram.Intrinsic{Op: ram.OpMod, Type: value.Number, Args: []ram.Expr{
				&ram.Intrinsic{Op: ram.OpAdd, Type: value.Number, Args: []ram.Expr{elem(0, 0), elem(1, 1)}},
				num(2),
			}},
			num(0)),
	}
	fn, ok := compile.CompileCondition(cond, st, nil)
	if !ok {
		t.Fatal("fusible condition rejected")
	}
	tuples := []tuple.Tuple{{0}, {0, 0}}
	set := func(a, b value.Value) {
		tuples[0][0] = a
		tuples[1][1] = b
	}
	set(4, 2)
	if !fn(tuples) {
		t.Error("4>2 and (4+2)%2=0 should hold")
	}
	set(4, 3)
	if fn(tuples) {
		t.Error("(4+3)%2=0 should fail")
	}
	set(1, 1)
	if fn(tuples) {
		t.Error("1>2 should fail")
	}
}

func TestCompileConditionRejectsRelations(t *testing.T) {
	st := symtab.New()
	rel := &ram.Relation{Name: "r", Arity: 1}
	if _, ok := compile.CompileCondition(&ram.EmptinessCheck{Rel: rel}, st, nil); ok {
		t.Fatal("relation-dependent condition compiled")
	}
}

func TestCompileConditionAppliesCoords(t *testing.T) {
	st := symtab.New()
	// Element 1 of tuple 0 is stored at encoded position 0 under order
	// (1,0); the closure must read the rewritten slot.
	coords := map[int32]tuple.Order{0: {1, 0}}
	cond := constraint(ram.CmpEQ, elem(0, 1), num(9))
	fn, ok := compile.CompileCondition(cond, st, coords)
	if !ok {
		t.Fatal("rejected")
	}
	// Encoded tuple: position 0 holds source element 1.
	if !fn([]tuple.Tuple{{9, 0}}) {
		t.Error("coords rewrite missed")
	}
	if fn([]tuple.Tuple{{0, 9}}) {
		t.Error("read unrewritten position")
	}
}
