// Package lexer tokenizes the Datalog source language.
package lexer

import (
	"fmt"
	"strconv"
	"strings"

	"sti/internal/ast"
)

// Kind classifies tokens.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Number    // signed integer literal
	Unsigned  // integer literal with "u" suffix
	Float     // float literal
	String    // quoted string
	Directive // .decl, .input, .output, .printsize (text carries the name)

	LParen
	RParen
	LBrace
	RBrace
	Comma
	Dot
	ColonDash // :-
	Colon
	Semicolon
	Bang
	Underscore

	Eq // =
	Ne // !=
	Lt // <
	Le // <=
	Gt // >
	Ge // >=

	Plus
	Minus
	Star
	Slash
	Percent
	Caret
)

var kindNames = map[Kind]string{
	EOF: "end of input", Ident: "identifier", Number: "number", Unsigned: "unsigned",
	Float: "float", String: "string", Directive: "directive", LParen: "'('",
	RParen: "')'", LBrace: "'{'", RBrace: "'}'", Comma: "','", Dot: "'.'",
	ColonDash: "':-'", Colon: "':'", Semicolon: "';'", Bang: "'!'",
	Underscore: "'_'", Eq: "'='", Ne: "'!='", Lt: "'<'", Le: "'<='",
	Gt: "'>'", Ge: "'>='", Plus: "'+'", Minus: "'-'", Star: "'*'",
	Slash: "'/'", Percent: "'%'", Caret: "'^'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

// Token is a lexeme with its position.
type Token struct {
	Kind Kind
	Text string // identifier name, directive name, or literal text
	Num  int64  // numeric value for Number/Unsigned
	F    float32
	Pos  ast.Pos
}

// Error is a lexical error with position.
type Error struct {
	Msg string
	Pos ast.Pos
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Pos.Line, e.Pos.Col, e.Msg)
}

// Lexer tokenizes a source string.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) pos() ast.Pos { return ast.Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return &Error{Msg: "unterminated block comment", Pos: start}
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || ('0' <= c && c <= '9')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case c == '.':
		// Directive or plain dot: ".decl" vs clause-terminating ".".
		if isIdentStart(l.peek2()) {
			l.advance()
			start := l.off
			for l.off < len(l.src) && isIdentPart(l.peek()) {
				l.advance()
			}
			name := l.src[start:l.off]
			switch name {
			case "decl", "input", "output", "printsize":
				return Token{Kind: Directive, Text: name, Pos: pos}, nil
			default:
				return Token{}, &Error{Msg: fmt.Sprintf("unknown directive .%s", name), Pos: pos}
			}
		}
		l.advance()
		return Token{Kind: Dot, Pos: pos}, nil
	case isDigit(c):
		return l.number(pos)
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if text == "_" {
			return Token{Kind: Underscore, Pos: pos}, nil
		}
		return Token{Kind: Ident, Text: text, Pos: pos}, nil
	case c == '"':
		return l.str(pos)
	}
	l.advance()
	switch c {
	case '(':
		return Token{Kind: LParen, Pos: pos}, nil
	case ')':
		return Token{Kind: RParen, Pos: pos}, nil
	case '{':
		return Token{Kind: LBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: RBrace, Pos: pos}, nil
	case ',':
		return Token{Kind: Comma, Pos: pos}, nil
	case ';':
		return Token{Kind: Semicolon, Pos: pos}, nil
	case ':':
		if l.peek() == '-' {
			l.advance()
			return Token{Kind: ColonDash, Pos: pos}, nil
		}
		return Token{Kind: Colon, Pos: pos}, nil
	case '!':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: Ne, Pos: pos}, nil
		}
		return Token{Kind: Bang, Pos: pos}, nil
	case '=':
		return Token{Kind: Eq, Pos: pos}, nil
	case '<':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: Le, Pos: pos}, nil
		}
		return Token{Kind: Lt, Pos: pos}, nil
	case '>':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: Ge, Pos: pos}, nil
		}
		return Token{Kind: Gt, Pos: pos}, nil
	case '+':
		return Token{Kind: Plus, Pos: pos}, nil
	case '-':
		return Token{Kind: Minus, Pos: pos}, nil
	case '*':
		return Token{Kind: Star, Pos: pos}, nil
	case '/':
		return Token{Kind: Slash, Pos: pos}, nil
	case '%':
		return Token{Kind: Percent, Pos: pos}, nil
	case '^':
		return Token{Kind: Caret, Pos: pos}, nil
	}
	return Token{}, &Error{Msg: fmt.Sprintf("unexpected character %q", c), Pos: pos}
}

func (l *Lexer) number(pos ast.Pos) (Token, error) {
	start := l.off
	// Hex and binary literals.
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'b') {
		base := 16
		if l.peek2() == 'b' {
			base = 2
		}
		l.advance()
		l.advance()
		digStart := l.off
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
		text := l.src[digStart:l.off]
		v, err := strconv.ParseUint(text, base, 32)
		if err != nil {
			return Token{}, &Error{Msg: fmt.Sprintf("bad numeric literal %q: %v", l.src[start:l.off], err), Pos: pos}
		}
		if l.peek() == 'u' {
			l.advance()
			return Token{Kind: Unsigned, Num: int64(v), Pos: pos}, nil
		}
		return Token{Kind: Number, Num: int64(v), Pos: pos}, nil
	}
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	isFloat := false
	if l.peek() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save, saveLine, saveCol := l.off, l.line, l.col
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			isFloat = true
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			l.off, l.line, l.col = save, saveLine, saveCol
		}
	}
	text := l.src[start:l.off]
	if isFloat {
		f, err := strconv.ParseFloat(text, 32)
		if err != nil {
			return Token{}, &Error{Msg: fmt.Sprintf("bad float literal %q: %v", text, err), Pos: pos}
		}
		return Token{Kind: Float, F: float32(f), Pos: pos}, nil
	}
	if l.peek() == 'u' {
		l.advance()
		v, err := strconv.ParseUint(text, 10, 32)
		if err != nil {
			return Token{}, &Error{Msg: fmt.Sprintf("unsigned literal %q out of range", text), Pos: pos}
		}
		return Token{Kind: Unsigned, Num: int64(v), Pos: pos}, nil
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil || v > 1<<32-1 {
		return Token{}, &Error{Msg: fmt.Sprintf("number literal %q out of range", text), Pos: pos}
	}
	return Token{Kind: Number, Num: v, Pos: pos}, nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || ('a' <= c && c <= 'f') || ('A' <= c && c <= 'F')
}

func (l *Lexer) str(pos ast.Pos) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.off >= len(l.src) || l.peek() == '\n' {
			return Token{}, &Error{Msg: "unterminated string literal", Pos: pos}
		}
		c := l.advance()
		switch c {
		case '"':
			return Token{Kind: String, Text: b.String(), Pos: pos}, nil
		case '\\':
			if l.off >= len(l.src) {
				return Token{}, &Error{Msg: "unterminated string literal", Pos: pos}
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			default:
				return Token{}, &Error{Msg: fmt.Sprintf("unknown escape \\%c", e), Pos: pos}
			}
		default:
			b.WriteByte(c)
		}
	}
}

// All tokenizes the whole input, for tests and tools.
func All(src string) ([]Token, error) {
	l := New(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
