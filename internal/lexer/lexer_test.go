package lexer

import (
	"strings"
	"testing"
)

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := All(src)
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	ks := make([]Kind, len(toks))
	for i, tok := range toks {
		ks[i] = tok.Kind
	}
	return ks
}

func eq(a, b []Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBasicTokens(t *testing.T) {
	got := kinds(t, `edge(x, y) :- node(x).`)
	want := []Kind{Ident, LParen, Ident, Comma, Ident, RParen, ColonDash, Ident, LParen, Ident, RParen, Dot, EOF}
	if !eq(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestDirectives(t *testing.T) {
	toks, err := All(".decl r(x:number)\n.input r\n.output r\n.printsize r")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, tok := range toks {
		if tok.Kind == Directive {
			names = append(names, tok.Text)
		}
	}
	if strings.Join(names, ",") != "decl,input,output,printsize" {
		t.Fatalf("directives = %v", names)
	}
}

func TestUnknownDirective(t *testing.T) {
	if _, err := All(".bogus r"); err == nil {
		t.Fatal("unknown directive accepted")
	}
}

func TestNumbers(t *testing.T) {
	toks, err := All("42 0x1F 0b101 7u 3.5 1e3 2.5e-2")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != Number || toks[0].Num != 42 {
		t.Errorf("42: %+v", toks[0])
	}
	if toks[1].Kind != Number || toks[1].Num != 31 {
		t.Errorf("0x1F: %+v", toks[1])
	}
	if toks[2].Kind != Number || toks[2].Num != 5 {
		t.Errorf("0b101: %+v", toks[2])
	}
	if toks[3].Kind != Unsigned || toks[3].Num != 7 {
		t.Errorf("7u: %+v", toks[3])
	}
	if toks[4].Kind != Float || toks[4].F != 3.5 {
		t.Errorf("3.5: %+v", toks[4])
	}
	if toks[5].Kind != Float || toks[5].F != 1000 {
		t.Errorf("1e3: %+v", toks[5])
	}
	if toks[6].Kind != Float || toks[6].F != 0.025 {
		t.Errorf("2.5e-2: %+v", toks[6])
	}
}

func TestNumberFollowedByDot(t *testing.T) {
	// "f(1)." must not lex 1. as a float.
	got := kinds(t, "f(1).")
	want := []Kind{Ident, LParen, Number, RParen, Dot, EOF}
	if !eq(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestStrings(t *testing.T) {
	toks, err := All(`"hello" "a\nb" "q\"q" "back\\slash" ""`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"hello", "a\nb", `q"q`, `back\slash`, ""}
	for i, w := range want {
		if toks[i].Kind != String || toks[i].Text != w {
			t.Errorf("string %d = %q (kind %v), want %q", i, toks[i].Text, toks[i].Kind, w)
		}
	}
}

func TestStringErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `"bad\qescape"`, "\"newline\nin\""} {
		if _, err := All(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, "a // line comment\n/* block\ncomment */ b")
	want := []Kind{Ident, Ident, EOF}
	if !eq(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if _, err := All("/* unterminated"); err == nil {
		t.Fatal("unterminated block comment accepted")
	}
}

func TestOperators(t *testing.T) {
	got := kinds(t, "= != < <= > >= + - * / % ^ ! : ; { }")
	want := []Kind{Eq, Ne, Lt, Le, Gt, Ge, Plus, Minus, Star, Slash, Percent, Caret, Bang, Colon, Semicolon, LBrace, RBrace, EOF}
	if !eq(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestUnderscoreVsIdent(t *testing.T) {
	toks, err := All("_ _x x_")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != Underscore {
		t.Errorf("_ lexed as %v", toks[0].Kind)
	}
	if toks[1].Kind != Ident || toks[1].Text != "_x" {
		t.Errorf("_x lexed as %v %q", toks[1].Kind, toks[1].Text)
	}
	if toks[2].Kind != Ident || toks[2].Text != "x_" {
		t.Errorf("x_ lexed as %v", toks[2].Kind)
	}
}

func TestPositions(t *testing.T) {
	toks, err := All("a\n  bb")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %+v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("bb at %+v", toks[1].Pos)
	}
}

func TestNumberOutOfRange(t *testing.T) {
	if _, err := All("99999999999999999999"); err == nil {
		t.Fatal("huge number accepted")
	}
}

func TestUnexpectedChar(t *testing.T) {
	if _, err := All("@"); err == nil {
		t.Fatal("@ accepted")
	}
}
