package btree

// Iter is a forward in-order iterator, optionally bounded above. The zero
// value is an exhausted iterator. Iterators are invalidated by any mutation
// of the tree they traverse.
type Iter[K Key[K]] struct {
	stack   []frame[K]
	hi      K
	bounded bool
	hiExcl  *K // exclusive upper bound for partitioned scans
}

type frame[K Key[K]] struct {
	nd *node[K]
	i  int
}

// Iter returns an iterator over all keys in ascending order.
func (t *Tree[K]) Iter() Iter[K] {
	var it Iter[K]
	it.pushLeft(t.root)
	return it
}

// Seek returns an iterator positioned at the first key >= lo.
func (t *Tree[K]) Seek(lo K) Iter[K] {
	var it Iter[K]
	it.seek(t.root, lo)
	return it
}

// Range returns an iterator over keys k with lo <= k <= hi.
func (t *Tree[K]) Range(lo, hi K) Iter[K] {
	it := t.Seek(lo)
	it.hi = hi
	it.bounded = true
	return it
}

// pushLeft descends to the leftmost position of the subtree rooted at nd.
func (it *Iter[K]) pushLeft(nd *node[K]) {
	for nd != nil {
		it.stack = append(it.stack, frame[K]{nd, 0})
		if nd.leaf() {
			return
		}
		nd = nd.children[0]
	}
}

// seek builds the traversal stack so that Next yields keys >= lo in order.
func (it *Iter[K]) seek(nd *node[K], lo K) {
	for nd != nil {
		i, _ := nd.find(lo)
		it.stack = append(it.stack, frame[K]{nd, i})
		if nd.leaf() {
			return
		}
		nd = nd.children[i]
	}
}

// Next returns the next key, or ok=false when the iterator is exhausted or
// the next key exceeds the upper bound.
func (it *Iter[K]) Next() (K, bool) {
	for len(it.stack) > 0 {
		top := &it.stack[len(it.stack)-1]
		nd := top.nd
		if top.i < int(nd.n) {
			k := nd.keys[top.i]
			if it.bounded && k.Cmp(it.hi) > 0 {
				it.stack = it.stack[:0]
				var zero K
				return zero, false
			}
			if it.hiExcl != nil && k.Cmp(*it.hiExcl) >= 0 {
				it.stack = it.stack[:0]
				var zero K
				return zero, false
			}
			top.i++
			if !nd.leaf() {
				it.pushLeft(nd.children[top.i])
			}
			return k, true
		}
		it.stack = it.stack[:len(it.stack)-1]
	}
	var zero K
	return zero, false
}
