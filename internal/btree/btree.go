// Package btree implements the specialized in-memory B-tree used to store
// relations, modelled on Soufflé's Datalog-enabled B-tree (Jordan et al.,
// PPoPP 2019; paper §2).
//
// The tree is generic over its key type. The engine instantiates it with
// fixed-arity tuple types ([1]uint32 .. [16]uint32 wrappers defined in
// internal/relation), so the Go compiler generates a distinct instantiation
// per arity with a fixed-trip-count comparison loop — the Go analog of the
// paper's C++ template specialization, recovered for the interpreter through
// the arity factory (the de-specialization of §3).
//
// Datalog evaluation mostly inserts, tests membership, enumerates, and
// clears; deletion (remove.go) exists only for the incremental-retraction
// path and runs outside scan loops, so the hot structure stays simple and
// fast. All mutating operations require external synchronization; read-only
// operations (Contains, iteration) may run concurrently with each other.
package btree

// Key is the constraint for tree keys: a comparable value with a total
// lexicographic order. Cmp returns <0, 0, or >0.
type Key[K any] interface {
	comparable
	Cmp(K) int
}

// degree is the minimum branching factor (CLRS t). Every node except the
// root holds between degree-1 and 2*degree-1 keys. 8 gives 15-key nodes:
// 60-240 bytes of keys per node for arities 1-16, a good fit for a few
// cache lines.
const degree = 8

const maxKeys = 2*degree - 1

type node[K Key[K]] struct {
	keys     [maxKeys]K
	n        int8
	children []*node[K] // nil for leaves; len n+1 otherwise
}

func (nd *node[K]) leaf() bool { return nd.children == nil }

// find returns the first index i with keys[i] >= k, and whether keys[i] == k.
func (nd *node[K]) find(k K) (int, bool) {
	lo, hi := 0, int(nd.n)
	for lo < hi {
		mid := (lo + hi) / 2
		if nd.keys[mid].Cmp(k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < int(nd.n) && nd.keys[lo] == k
}

// Tree is an ordered set of K. The zero value is an empty tree.
type Tree[K Key[K]] struct {
	root *node[K]
	size int
}

// New returns an empty tree.
func New[K Key[K]]() *Tree[K] { return &Tree[K]{} }

// Size reports the number of keys stored.
func (t *Tree[K]) Size() int { return t.size }

// Empty reports whether the tree holds no keys.
func (t *Tree[K]) Empty() bool { return t.size == 0 }

// Clear removes all keys.
func (t *Tree[K]) Clear() {
	t.root = nil
	t.size = 0
}

// Swap exchanges the contents of two trees in O(1).
func (t *Tree[K]) Swap(o *Tree[K]) {
	t.root, o.root = o.root, t.root
	t.size, o.size = o.size, t.size
}

// Contains reports whether k is in the set.
func (t *Tree[K]) Contains(k K) bool {
	nd := t.root
	for nd != nil {
		i, ok := nd.find(k)
		if ok {
			return true
		}
		if nd.leaf() {
			return false
		}
		nd = nd.children[i]
	}
	return false
}

// Insert adds k to the set, reporting whether it was newly added.
func (t *Tree[K]) Insert(k K) bool {
	if t.root == nil {
		t.root = &node[K]{}
		t.root.keys[0] = k
		t.root.n = 1
		t.size = 1
		return true
	}
	if int(t.root.n) == maxKeys {
		// Preemptive root split.
		r := &node[K]{children: make([]*node[K], 1, 2*degree)}
		r.children[0] = t.root
		r.splitChild(0)
		t.root = r
	}
	if t.insertNonFull(t.root, k) {
		t.size++
		return true
	}
	return false
}

// InsertAll adds every key in keys, reporting how many were newly added. It
// is the bulk entry point of the staging-buffer merge path: the relation
// layer batches encoded keys so one call amortizes its dispatch over the
// batch.
func (t *Tree[K]) InsertAll(keys []K) int {
	added := 0
	for _, k := range keys {
		if t.Insert(k) {
			added++
		}
	}
	return added
}

// splitChild splits the full child at index i of nd, lifting its median key
// into nd. nd must not be full.
func (nd *node[K]) splitChild(i int) {
	child := nd.children[i]
	right := &node[K]{}
	right.n = degree - 1
	copy(right.keys[:], child.keys[degree:])
	if !child.leaf() {
		right.children = make([]*node[K], degree, 2*degree)
		copy(right.children, child.children[degree:])
		child.children = child.children[:degree]
	}
	median := child.keys[degree-1]
	var zero K
	for j := degree - 1; j < maxKeys; j++ {
		child.keys[j] = zero
	}
	child.n = degree - 1

	nd.children = append(nd.children, nil)
	copy(nd.children[i+2:], nd.children[i+1:])
	nd.children[i+1] = right
	copy(nd.keys[i+1:], nd.keys[i:int(nd.n)])
	nd.keys[i] = median
	nd.n++
}

func (t *Tree[K]) insertNonFull(nd *node[K], k K) bool {
	for {
		i, ok := nd.find(k)
		if ok {
			return false
		}
		if nd.leaf() {
			copy(nd.keys[i+1:], nd.keys[i:int(nd.n)])
			nd.keys[i] = k
			nd.n++
			return true
		}
		if int(nd.children[i].n) == maxKeys {
			nd.splitChild(i)
			// The lifted median may equal k or change which child k goes to.
			if c := nd.keys[i].Cmp(k); c == 0 {
				return false
			} else if c < 0 {
				i++
			}
		}
		nd = nd.children[i]
	}
}

// ForEach calls fn on every key in ascending order until fn returns false.
func (t *Tree[K]) ForEach(fn func(K) bool) {
	forEach(t.root, fn)
}

func forEach[K Key[K]](nd *node[K], fn func(K) bool) bool {
	if nd == nil {
		return true
	}
	if nd.leaf() {
		for i := 0; i < int(nd.n); i++ {
			if !fn(nd.keys[i]) {
				return false
			}
		}
		return true
	}
	for i := 0; i < int(nd.n); i++ {
		if !forEach(nd.children[i], fn) {
			return false
		}
		if !fn(nd.keys[i]) {
			return false
		}
	}
	return forEach(nd.children[nd.n], fn)
}
