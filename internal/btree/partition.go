package btree

// SeparatorKeys returns up to max-1 keys that split the tree into roughly
// equal key ranges, taken from the highest levels of the tree. The returned
// keys are in ascending order. An empty result means the tree is too small
// to split.
func (t *Tree[K]) SeparatorKeys(max int) []K {
	if t.root == nil || max <= 1 {
		return nil
	}
	keys := collectSeparators(t.root, max)
	if len(keys) > max-1 {
		// Thin out evenly.
		step := float64(len(keys)) / float64(max)
		out := make([]K, 0, max-1)
		for i := 1; i < max; i++ {
			out = append(out, keys[int(float64(i)*step)-0])
		}
		return out
	}
	return keys
}

// collectSeparators gathers node keys breadth-first until enough separators
// exist.
func collectSeparators[K Key[K]](root *node[K], want int) []K {
	level := []*node[K]{root}
	var keys []K
	for len(level) > 0 {
		keys = keys[:0]
		var next []*node[K]
		for _, nd := range level {
			for i := 0; i < int(nd.n); i++ {
				keys = append(keys, nd.keys[i])
			}
			if !nd.leaf() {
				next = append(next, nd.children...)
			}
		}
		if len(keys) >= want-1 || len(next) == 0 {
			break
		}
		level = next
	}
	// keys from one level are collected left-to-right and are sorted.
	return keys
}

// SeekBefore returns an iterator over keys k with lo <= k < hi; a nil lo
// means from the beginning, hiSet=false means unbounded above. It underpins
// partitioned parallel scans.
func (t *Tree[K]) SeekBefore(lo *K, hi *K) Iter[K] {
	var it Iter[K]
	if lo == nil {
		it.pushLeft(t.root)
	} else {
		it.seek(t.root, *lo)
	}
	if hi != nil {
		it.hiExcl = hi
	}
	return it
}
