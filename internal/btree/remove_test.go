package btree

import (
	"math/rand"
	"testing"
)

func TestRemoveBasics(t *testing.T) {
	tr := New[k2]()
	if tr.Remove(k2{1, 2}) {
		t.Fatal("remove from empty tree reported a hit")
	}
	tr.Insert(k2{1, 2})
	tr.Insert(k2{3, 4})
	if tr.Remove(k2{9, 9}) {
		t.Fatal("remove of absent key reported a hit")
	}
	if !tr.Remove(k2{1, 2}) || tr.Size() != 1 {
		t.Fatalf("remove of present key failed (size=%d)", tr.Size())
	}
	if tr.Contains(k2{1, 2}) || !tr.Contains(k2{3, 4}) {
		t.Fatal("membership wrong after remove")
	}
	if !tr.Remove(k2{3, 4}) || !tr.Empty() {
		t.Fatalf("tree not empty after removing everything (size=%d)", tr.Size())
	}
	// Reuse after emptying: the nil-root path must accept new inserts.
	if !tr.Insert(k2{5, 6}) || tr.Size() != 1 {
		t.Fatal("insert after emptying failed")
	}
}

// TestRemoveRebalances drives deletions through every rebalancing shape —
// leaf removal, internal-node replacement by predecessor/successor, sibling
// borrows, and merges down to a collapsing root — by deleting from large
// sequential trees in several orders.
func TestRemoveRebalances(t *testing.T) {
	const n = 5000
	build := func() *Tree[k2] {
		tr := New[k2]()
		for i := 0; i < n; i++ {
			tr.Insert(k2{uint32(i), uint32(i)})
		}
		return tr
	}
	orders := map[string]func(i int) int{
		"ascending":  func(i int) int { return i },
		"descending": func(i int) int { return n - 1 - i },
		"inside-out": func(i int) int {
			if i%2 == 0 {
				return n/2 + i/2
			}
			return n/2 - (i+1)/2
		},
	}
	for name, at := range orders {
		tr := build()
		for i := 0; i < n; i++ {
			k := k2{uint32(at(i)), uint32(at(i))}
			if !tr.Remove(k) {
				t.Fatalf("%s: key %v missing at step %d", name, k, i)
			}
			if tr.Size() != n-1-i {
				t.Fatalf("%s: size %d after %d removals", name, tr.Size(), i+1)
			}
		}
		if !tr.Empty() {
			t.Fatalf("%s: tree not empty", name)
		}
	}
}

// TestRemoveRandomizedAgainstModel interleaves random inserts and removes
// and checks size, membership, and iteration order against a map model.
func TestRemoveRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tr := New[k2]()
	model := map[k2]bool{}
	for step := 0; step < 30000; step++ {
		k := k2{uint32(rng.Intn(500)), uint32(rng.Intn(500))}
		if rng.Intn(3) == 0 {
			if tr.Remove(k) != model[k] {
				t.Fatalf("step %d: remove(%v) disagrees with model", step, k)
			}
			delete(model, k)
		} else {
			if tr.Insert(k) == model[k] {
				t.Fatalf("step %d: insert(%v) newness disagrees with model", step, k)
			}
			model[k] = true
		}
	}
	if tr.Size() != len(model) {
		t.Fatalf("size %d, model %d", tr.Size(), len(model))
	}
	var keys []k2
	for k := range model {
		keys = append(keys, k)
	}
	want := sortedUnique(keys)
	got := collect(tr)
	if len(got) != len(want) {
		t.Fatalf("iteration yields %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("iteration order diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}
}
