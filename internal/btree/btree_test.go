package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// k2 is a 2-element key for tests.
type k2 [2]uint32

func (a k2) Cmp(b k2) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

func collect(t *Tree[k2]) []k2 {
	var out []k2
	t.ForEach(func(k k2) bool { out = append(out, k); return true })
	return out
}

func collectIter(it Iter[k2]) []k2 { //nolint:gocritic // iterators are value types seeded by the tree
	return drain(&it)
}

func drain(it *Iter[k2]) []k2 {
	var out []k2
	for {
		k, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, k)
	}
}

func sortedUnique(keys []k2) []k2 {
	sort.Slice(keys, func(i, j int) bool { return keys[i].Cmp(keys[j]) < 0 })
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || k != keys[i-1] {
			out = append(out, k)
		}
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := New[k2]()
	if !tr.Empty() || tr.Size() != 0 {
		t.Fatalf("new tree not empty: size=%d", tr.Size())
	}
	if tr.Contains(k2{1, 2}) {
		t.Error("empty tree contains a key")
	}
	if got := collect(tr); len(got) != 0 {
		t.Errorf("ForEach on empty tree yielded %v", got)
	}
	it := tr.Iter()
	if _, ok := it.Next(); ok {
		t.Error("iterator on empty tree yielded a key")
	}
}

func TestInsertReportsNew(t *testing.T) {
	tr := New[k2]()
	if !tr.Insert(k2{1, 2}) {
		t.Error("first insert not reported new")
	}
	if tr.Insert(k2{1, 2}) {
		t.Error("duplicate insert reported new")
	}
	if tr.Size() != 1 {
		t.Errorf("size = %d, want 1", tr.Size())
	}
}

func TestInsertManyAscending(t *testing.T) {
	tr := New[k2]()
	const n = 2000
	for i := 0; i < n; i++ {
		if !tr.Insert(k2{uint32(i), 0}) {
			t.Fatalf("insert %d reported duplicate", i)
		}
	}
	if tr.Size() != n {
		t.Fatalf("size = %d, want %d", tr.Size(), n)
	}
	got := collect(tr)
	for i, k := range got {
		if k != (k2{uint32(i), 0}) {
			t.Fatalf("position %d: got %v", i, k)
		}
	}
}

func TestInsertManyDescending(t *testing.T) {
	tr := New[k2]()
	const n = 2000
	for i := n - 1; i >= 0; i-- {
		tr.Insert(k2{uint32(i), 0})
	}
	got := collect(tr)
	if len(got) != n {
		t.Fatalf("len = %d, want %d", len(got), n)
	}
	for i, k := range got {
		if k[0] != uint32(i) {
			t.Fatalf("position %d: got %v", i, k)
		}
	}
}

func TestRandomAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New[k2]()
	model := map[k2]bool{}
	for i := 0; i < 20000; i++ {
		k := k2{uint32(rng.Intn(500)), uint32(rng.Intn(500))}
		newTree := tr.Insert(k)
		newModel := !model[k]
		model[k] = true
		if newTree != newModel {
			t.Fatalf("insert %v: tree says new=%v, model says %v", k, newTree, newModel)
		}
	}
	if tr.Size() != len(model) {
		t.Fatalf("size = %d, model = %d", tr.Size(), len(model))
	}
	// Membership agrees, including absent keys.
	for i := 0; i < 5000; i++ {
		k := k2{uint32(rng.Intn(600)), uint32(rng.Intn(600))}
		if tr.Contains(k) != model[k] {
			t.Fatalf("contains %v: tree=%v model=%v", k, tr.Contains(k), model[k])
		}
	}
	// Enumeration is sorted and complete.
	got := collect(tr)
	if len(got) != len(model) {
		t.Fatalf("enumerated %d keys, model has %d", len(got), len(model))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Cmp(got[i]) >= 0 {
			t.Fatalf("out of order at %d: %v >= %v", i, got[i-1], got[i])
		}
	}
	for _, k := range got {
		if !model[k] {
			t.Fatalf("enumerated key %v not in model", k)
		}
	}
	// Iter matches ForEach.
	if it := collectIter(tr.Iter()); len(it) != len(got) {
		t.Fatalf("Iter yielded %d keys, ForEach %d", len(it), len(got))
	}
}

func TestSeek(t *testing.T) {
	tr := New[k2]()
	for i := 0; i < 100; i++ {
		tr.Insert(k2{uint32(2 * i), 0}) // even keys 0..198
	}
	tests := []struct {
		lo    k2
		first k2
		count int
	}{
		{k2{0, 0}, k2{0, 0}, 100},
		{k2{1, 0}, k2{2, 0}, 99}, // between keys
		{k2{2, 0}, k2{2, 0}, 99}, // exact
		{k2{197, 0}, k2{198, 0}, 1},
		{k2{198, 1}, k2{}, 0}, // past the end
		{k2{199, 0}, k2{}, 0},
	}
	for _, tc := range tests {
		got := collectIter(tr.Seek(tc.lo))
		if len(got) != tc.count {
			t.Errorf("Seek(%v): %d keys, want %d", tc.lo, len(got), tc.count)
			continue
		}
		if tc.count > 0 && got[0] != tc.first {
			t.Errorf("Seek(%v): first = %v, want %v", tc.lo, got[0], tc.first)
		}
	}
}

func TestRange(t *testing.T) {
	tr := New[k2]()
	for a := uint32(0); a < 50; a++ {
		for b := uint32(0); b < 4; b++ {
			tr.Insert(k2{a, b})
		}
	}
	// Prefix query a=7: lo={7,0}, hi={7,max}.
	got := collectIter(tr.Range(k2{7, 0}, k2{7, ^uint32(0)}))
	if len(got) != 4 {
		t.Fatalf("range a=7: %d keys, want 4", len(got))
	}
	for i, k := range got {
		if k != (k2{7, uint32(i)}) {
			t.Fatalf("range a=7 position %d: %v", i, k)
		}
	}
	// Empty range.
	if got := collectIter(tr.Range(k2{50, 0}, k2{50, ^uint32(0)})); len(got) != 0 {
		t.Fatalf("range a=50 should be empty, got %v", got)
	}
	// Multi-prefix range.
	got = collectIter(tr.Range(k2{10, 0}, k2{12, ^uint32(0)}))
	if len(got) != 12 {
		t.Fatalf("range 10..12: %d keys, want 12", len(got))
	}
}

func TestClearAndReuse(t *testing.T) {
	tr := New[k2]()
	for i := 0; i < 100; i++ {
		tr.Insert(k2{uint32(i), 0})
	}
	tr.Clear()
	if !tr.Empty() {
		t.Fatal("tree not empty after Clear")
	}
	if tr.Contains(k2{5, 0}) {
		t.Fatal("cleared tree contains a key")
	}
	if !tr.Insert(k2{5, 0}) {
		t.Fatal("insert after clear not reported new")
	}
	if tr.Size() != 1 {
		t.Fatalf("size after clear+insert = %d", tr.Size())
	}
}

func TestSwap(t *testing.T) {
	a, b := New[k2](), New[k2]()
	a.Insert(k2{1, 0})
	a.Insert(k2{2, 0})
	b.Insert(k2{9, 9})
	a.Swap(b)
	if a.Size() != 1 || !a.Contains(k2{9, 9}) {
		t.Errorf("a after swap: size=%d", a.Size())
	}
	if b.Size() != 2 || !b.Contains(k2{1, 0}) || !b.Contains(k2{2, 0}) {
		t.Errorf("b after swap: size=%d", b.Size())
	}
}

func TestForEachEarlyStop(t *testing.T) {
	tr := New[k2]()
	for i := 0; i < 100; i++ {
		tr.Insert(k2{uint32(i), 0})
	}
	n := 0
	tr.ForEach(func(k2) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("ForEach visited %d keys after early stop, want 10", n)
	}
}

// TestQuickSetSemantics drives random batches through the tree and checks
// set semantics against a sorted-unique reference.
func TestQuickSetSemantics(t *testing.T) {
	f := func(raw []uint32) bool {
		tr := New[k2]()
		var keys []k2
		for i := 0; i+1 < len(raw); i += 2 {
			k := k2{raw[i] % 64, raw[i+1] % 64}
			keys = append(keys, k)
			tr.Insert(k)
		}
		want := sortedUnique(keys)
		got := collect(tr)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSeekConsistent checks that Seek(lo) yields exactly the sorted
// keys >= lo.
func TestQuickSeekConsistent(t *testing.T) {
	f := func(raw []uint32, lo0, lo1 uint32) bool {
		tr := New[k2]()
		var keys []k2
		for i := 0; i+1 < len(raw); i += 2 {
			k := k2{raw[i] % 32, raw[i+1] % 32}
			keys = append(keys, k)
			tr.Insert(k)
		}
		lo := k2{lo0 % 32, lo1 % 32}
		var want []k2
		for _, k := range sortedUnique(keys) {
			if k.Cmp(lo) >= 0 {
				want = append(want, k)
			}
		}
		got := collectIter(tr.Seek(lo))
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
