package btree

// Remove deletes k from the tree, reporting whether it was present. It is
// the textbook CLRS B-tree deletion: while descending, every child entered
// is first refilled to at least degree keys (borrowing from a sibling or
// merging with one), so the removal itself never needs to walk back up.
// Iterators obtained before a Remove are invalidated, like for Insert.
func (t *Tree[K]) Remove(k K) bool {
	if t.root == nil {
		return false
	}
	if !t.remove(t.root, k) {
		return false
	}
	// An emptied internal root collapses onto its only child; an emptied
	// leaf root leaves the empty tree.
	if t.root.n == 0 {
		if t.root.leaf() {
			t.root = nil
		} else {
			t.root = t.root.children[0]
		}
	}
	t.size--
	return true
}

func (t *Tree[K]) remove(nd *node[K], k K) bool {
	for {
		i, found := nd.find(k)
		if nd.leaf() {
			if !found {
				return false
			}
			nd.removeFromLeaf(i)
			return true
		}
		if found {
			t.removeFromInternal(nd, i)
			return true
		}
		// Refill the child before descending so it can afford a removal.
		if int(nd.children[i].n) < degree {
			i = nd.fill(i)
			// fill may have moved k into nd (rotation) or merged it down;
			// re-search this node rather than assuming the old position.
			var foundHere bool
			i, foundHere = nd.find(k)
			if foundHere {
				t.removeFromInternal(nd, i)
				return true
			}
			if nd.leaf() { // cannot happen: fill never turns an internal node into a leaf
				return false
			}
		}
		nd = nd.children[i]
	}
}

// removeFromLeaf deletes keys[i] from a leaf, zeroing the vacated slot so
// stale keys do not pin memory (mirroring splitChild).
func (nd *node[K]) removeFromLeaf(i int) {
	copy(nd.keys[i:], nd.keys[i+1:int(nd.n)])
	var zero K
	nd.keys[nd.n-1] = zero
	nd.n--
}

// removeFromInternal deletes keys[i] of an internal node by replacing it
// with its in-order predecessor or successor (whichever child can afford to
// lose a key) and recursing; when neither can, the two children merge around
// the key and the removal continues in the merged child.
func (t *Tree[K]) removeFromInternal(nd *node[K], i int) {
	k := nd.keys[i]
	switch {
	case int(nd.children[i].n) >= degree:
		pred := maxKey(nd.children[i])
		nd.keys[i] = pred
		t.remove(nd.children[i], pred)
	case int(nd.children[i+1].n) >= degree:
		succ := minKey(nd.children[i+1])
		nd.keys[i] = succ
		t.remove(nd.children[i+1], succ)
	default:
		nd.mergeChildren(i)
		t.remove(nd.children[i], k)
	}
}

func maxKey[K Key[K]](nd *node[K]) K {
	for !nd.leaf() {
		nd = nd.children[nd.n]
	}
	return nd.keys[nd.n-1]
}

func minKey[K Key[K]](nd *node[K]) K {
	for !nd.leaf() {
		nd = nd.children[0]
	}
	return nd.keys[0]
}

// fill brings children[i] up to at least degree keys and returns the index
// the descent should continue through (merging with the left sibling shifts
// the child one slot left).
func (nd *node[K]) fill(i int) int {
	switch {
	case i > 0 && int(nd.children[i-1].n) >= degree:
		nd.borrowFromLeft(i)
	case i < int(nd.n) && int(nd.children[i+1].n) >= degree:
		nd.borrowFromRight(i)
	case i > 0:
		nd.mergeChildren(i - 1)
		i--
	default:
		nd.mergeChildren(i)
	}
	return i
}

// borrowFromLeft rotates the rightmost key of children[i-1] through the
// separator into children[i].
func (nd *node[K]) borrowFromLeft(i int) {
	child, left := nd.children[i], nd.children[i-1]
	copy(child.keys[1:int(child.n)+1], child.keys[:int(child.n)])
	child.keys[0] = nd.keys[i-1]
	if !child.leaf() {
		child.children = append(child.children, nil)
		copy(child.children[1:], child.children)
		child.children[0] = left.children[left.n]
		left.children = left.children[:left.n]
	}
	nd.keys[i-1] = left.keys[left.n-1]
	var zero K
	left.keys[left.n-1] = zero
	left.n--
	child.n++
}

// borrowFromRight rotates the leftmost key of children[i+1] through the
// separator into children[i].
func (nd *node[K]) borrowFromRight(i int) {
	child, right := nd.children[i], nd.children[i+1]
	child.keys[child.n] = nd.keys[i]
	if !child.leaf() {
		child.children = append(child.children, right.children[0])
		copy(right.children, right.children[1:])
		right.children = right.children[:right.n]
	}
	nd.keys[i] = right.keys[0]
	copy(right.keys[:], right.keys[1:int(right.n)])
	var zero K
	right.keys[right.n-1] = zero
	right.n--
	child.n++
}

// mergeChildren folds children[i+1] and the separator keys[i] into
// children[i]. Both children must hold degree-1 keys.
func (nd *node[K]) mergeChildren(i int) {
	child, right := nd.children[i], nd.children[i+1]
	child.keys[child.n] = nd.keys[i]
	copy(child.keys[int(child.n)+1:], right.keys[:int(right.n)])
	if !child.leaf() {
		child.children = append(child.children, right.children...)
	}
	child.n += right.n + 1

	copy(nd.keys[i:], nd.keys[i+1:int(nd.n)])
	var zero K
	nd.keys[nd.n-1] = zero
	copy(nd.children[i+1:], nd.children[i+2:])
	nd.children = nd.children[:nd.n]
	nd.n--
}
