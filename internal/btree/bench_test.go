package btree

import (
	"math/rand"
	"testing"
)

func benchKeys(n int) []k2 {
	rng := rand.New(rand.NewSource(1))
	keys := make([]k2, n)
	for i := range keys {
		keys[i] = k2{rng.Uint32(), rng.Uint32()}
	}
	return keys
}

func BenchmarkInsertRandom(b *testing.B) {
	keys := benchKeys(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New[k2]()
		for _, k := range keys {
			tr.Insert(k)
		}
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := New[k2]()
		for j := 0; j < 1<<16; j++ {
			tr.Insert(k2{uint32(j), 0})
		}
	}
}

func BenchmarkContainsHit(b *testing.B) {
	keys := benchKeys(1 << 16)
	tr := New[k2]()
	for _, k := range keys {
		tr.Insert(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Contains(keys[i&(1<<16-1)])
	}
}

func BenchmarkIterate(b *testing.B) {
	keys := benchKeys(1 << 16)
	tr := New[k2]()
	for _, k := range keys {
		tr.Insert(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := tr.Iter()
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
	}
}

func BenchmarkRangeQuery(b *testing.B) {
	tr := New[k2]()
	for a := uint32(0); a < 1024; a++ {
		for c := uint32(0); c < 64; c++ {
			tr.Insert(k2{a, c})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := tr.Range(k2{uint32(i) & 1023, 0}, k2{uint32(i) & 1023, ^uint32(0)})
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
	}
}
