package btree

import (
	"math/rand"
	"testing"
)

func TestSeparatorKeysEmpty(t *testing.T) {
	tr := New[k2]()
	if got := tr.SeparatorKeys(4); len(got) != 0 {
		t.Fatalf("empty tree separators: %v", got)
	}
	tr.Insert(k2{1, 1})
	if got := tr.SeparatorKeys(1); len(got) != 0 {
		t.Fatalf("max=1 separators: %v", got)
	}
}

func TestSeekBeforeCoversDisjointly(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := New[k2]()
	model := map[k2]bool{}
	for i := 0; i < 10000; i++ {
		k := k2{rng.Uint32() % 997, rng.Uint32() % 31}
		tr.Insert(k)
		model[k] = true
	}
	for _, parts := range []int{2, 3, 8, 64} {
		seps := tr.SeparatorKeys(parts)
		if len(seps) >= parts {
			t.Fatalf("%d parts produced %d separators", parts, len(seps))
		}
		for i := 1; i < len(seps); i++ {
			if seps[i-1].Cmp(seps[i]) >= 0 {
				t.Fatalf("separators unsorted: %v", seps)
			}
		}
		seen := map[k2]bool{}
		var prev *k2
		total := 0
		for i := 0; i <= len(seps); i++ {
			var hi *k2
			if i < len(seps) {
				hi = &seps[i]
			}
			it := tr.SeekBefore(prev, hi)
			for {
				k, ok := it.Next()
				if !ok {
					break
				}
				if seen[k] {
					t.Fatalf("key %v yielded twice with %d parts", k, parts)
				}
				seen[k] = true
				total++
			}
			if i < len(seps) {
				prev = &seps[i]
			}
		}
		if total != tr.Size() {
			t.Fatalf("%d parts covered %d of %d keys", parts, total, tr.Size())
		}
		for k := range model {
			if !seen[k] {
				t.Fatalf("key %v missed with %d parts", k, parts)
			}
		}
	}
}

func TestSeekBeforeBounds(t *testing.T) {
	tr := New[k2]()
	for i := uint32(0); i < 100; i++ {
		tr.Insert(k2{i, 0})
	}
	lo := k2{10, 0}
	hi := k2{20, 0}
	it := tr.SeekBefore(&lo, &hi)
	count := 0
	for {
		k, ok := it.Next()
		if !ok {
			break
		}
		if k[0] < 10 || k[0] >= 20 {
			t.Fatalf("key %v escapes [10, 20)", k)
		}
		count++
	}
	if count != 10 {
		t.Fatalf("counted %d keys in [10,20)", count)
	}
}
