package dyntree

import (
	"math/rand"
	"sort"
	"testing"

	"sti/internal/tuple"
	"sti/internal/value"
)

func drain(it *Iter) []tuple.Tuple {
	var out []tuple.Tuple
	for {
		t, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, tuple.Clone(t))
	}
}

func TestOrderCmp(t *testing.T) {
	cmp := OrderCmp(tuple.Order{1, 0})
	// Compares element 1 first.
	if cmp(tuple.Tuple{9, 1}, tuple.Tuple{0, 2}) != -1 {
		t.Error("order comparator ignored the order array")
	}
	if cmp(tuple.Tuple{1, 5}, tuple.Tuple{2, 5}) != -1 {
		t.Error("tie-break on second order position failed")
	}
	if cmp(tuple.Tuple{1, 5}, tuple.Tuple{1, 5}) != 0 {
		t.Error("equal tuples not equal")
	}
}

func TestInsertContainsIterate(t *testing.T) {
	order := tuple.Order{1, 0}
	tr := New(OrderCmp(order))
	rng := rand.New(rand.NewSource(11))
	model := map[[2]value.Value]bool{}
	for i := 0; i < 3000; i++ {
		a, b := value.Value(rng.Intn(50)), value.Value(rng.Intn(50))
		newT := tr.Insert(tuple.Tuple{a, b})
		if newT == model[[2]value.Value{a, b}] {
			t.Fatalf("newness mismatch for (%d,%d)", a, b)
		}
		model[[2]value.Value{a, b}] = true
	}
	if tr.Size() != len(model) {
		t.Fatalf("size=%d model=%d", tr.Size(), len(model))
	}
	got := drain(tr.Iter())
	if len(got) != len(model) {
		t.Fatalf("enumerated %d", len(got))
	}
	// Sorted under the runtime order: by element 1, then element 0.
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a[1] > b[1] || (a[1] == b[1] && a[0] >= b[0]) {
			t.Fatalf("out of order: %v then %v", a, b)
		}
	}
}

func TestRangePrefixOnOrderedColumn(t *testing.T) {
	// Order (1,0): prefix search binds source column 1.
	order := tuple.Order{1, 0}
	tr := New(OrderCmp(order))
	for a := value.Value(0); a < 20; a++ {
		for b := value.Value(0); b < 5; b++ {
			tr.Insert(tuple.Tuple{a, b})
		}
	}
	// All tuples with source column 1 == 3.
	lo := tuple.Tuple{0, 3}
	hi := tuple.Tuple{^value.Value(0), 3}
	got := drain(tr.Range(lo, hi))
	if len(got) != 20 {
		t.Fatalf("range: %d tuples, want 20", len(got))
	}
	for _, tp := range got {
		if tp[1] != 3 {
			t.Fatalf("tuple %v escapes the range", tp)
		}
	}
}

func TestInsertCopies(t *testing.T) {
	tr := New(OrderCmp(tuple.Identity(2)))
	buf := tuple.Tuple{1, 2}
	tr.Insert(buf)
	buf[0] = 99
	if !tr.Contains(tuple.Tuple{1, 2}) {
		t.Fatal("tree aliased the caller's buffer")
	}
	if tr.Contains(tuple.Tuple{99, 2}) {
		t.Fatal("mutation leaked into the tree")
	}
}

func TestClearSwap(t *testing.T) {
	cmp := OrderCmp(tuple.Identity(1))
	a, b := New(cmp), New(cmp)
	a.Insert(tuple.Tuple{1})
	b.Insert(tuple.Tuple{2})
	b.Insert(tuple.Tuple{3})
	a.Swap(b)
	if a.Size() != 2 || b.Size() != 1 {
		t.Fatalf("swap sizes: %d %d", a.Size(), b.Size())
	}
	a.Clear()
	if a.Size() != 0 || a.Contains(tuple.Tuple{2}) {
		t.Fatal("clear failed")
	}
}

func TestAgainstSortReference(t *testing.T) {
	order := tuple.Order{2, 0, 1}
	cmp := OrderCmp(order)
	tr := New(cmp)
	rng := rand.New(rand.NewSource(5))
	var all []tuple.Tuple
	seen := map[[3]value.Value]bool{}
	for i := 0; i < 1000; i++ {
		k := [3]value.Value{value.Value(rng.Intn(9)), value.Value(rng.Intn(9)), value.Value(rng.Intn(9))}
		tr.Insert(k[:])
		if !seen[k] {
			seen[k] = true
			all = append(all, tuple.Clone(k[:]))
		}
	}
	sort.Slice(all, func(i, j int) bool { return cmp(all[i], all[j]) < 0 })
	got := drain(tr.Iter())
	if len(got) != len(all) {
		t.Fatalf("%d vs %d", len(got), len(all))
	}
	for i := range all {
		if tuple.Compare(got[i], all[i]) != 0 {
			t.Fatalf("position %d: got %v want %v", i, got[i], all[i])
		}
	}
}
