package dyntree

import (
	"math/rand"
	"testing"

	"sti/internal/tuple"
	"sti/internal/value"
)

func TestRemoveBasics(t *testing.T) {
	tr := New(OrderCmp(tuple.Order{0, 1}))
	if tr.Remove(tuple.Tuple{1, 2}) {
		t.Fatal("remove from empty tree reported a hit")
	}
	tr.Insert(tuple.Tuple{1, 2})
	tr.Insert(tuple.Tuple{3, 4})
	if tr.Remove(tuple.Tuple{1, 9}) {
		t.Fatal("remove of absent tuple reported a hit")
	}
	if !tr.Remove(tuple.Tuple{1, 2}) || tr.Size() != 1 {
		t.Fatalf("remove of present tuple failed (size=%d)", tr.Size())
	}
	if tr.Contains(tuple.Tuple{1, 2}) || !tr.Contains(tuple.Tuple{3, 4}) {
		t.Fatal("membership wrong after remove")
	}
	if !tr.Remove(tuple.Tuple{3, 4}) || tr.Size() != 0 {
		t.Fatal("tree not empty after removing everything")
	}
	if !tr.Insert(tuple.Tuple{5, 6}) {
		t.Fatal("insert after emptying failed")
	}
}

// TestRemoveRespectsOrder removes under a non-identity comparator and checks
// the survivors still enumerate in index order (element 1 first).
func TestRemoveRespectsOrder(t *testing.T) {
	order := tuple.Order{1, 0}
	tr := New(OrderCmp(order))
	rng := rand.New(rand.NewSource(17))
	model := map[[2]value.Value]bool{}
	for step := 0; step < 20000; step++ {
		k := [2]value.Value{value.Value(rng.Intn(300)), value.Value(rng.Intn(300))}
		tup := tuple.Tuple{k[0], k[1]}
		if rng.Intn(3) == 0 {
			if tr.Remove(tup) != model[k] {
				t.Fatalf("step %d: remove(%v) disagrees with model", step, tup)
			}
			delete(model, k)
		} else {
			if tr.Insert(tup) == model[k] {
				t.Fatalf("step %d: insert(%v) newness disagrees with model", step, tup)
			}
			model[k] = true
		}
	}
	if tr.Size() != len(model) {
		t.Fatalf("size %d, model %d", tr.Size(), len(model))
	}
	it := tr.Iter()
	got := drain(it)
	if len(got) != len(model) {
		t.Fatalf("iteration yields %d tuples, want %d", len(got), len(model))
	}
	cmp := OrderCmp(order)
	for i := 1; i < len(got); i++ {
		if cmp(got[i-1], got[i]) >= 0 {
			t.Fatalf("iteration out of order at %d: %v then %v", i, got[i-1], got[i])
		}
	}
	for _, tup := range got {
		if !model[[2]value.Value{tup[0], tup[1]}] {
			t.Fatalf("iteration yielded deleted tuple %v", tup)
		}
	}
}

// TestRemoveDrainsSequential forces the full rebalancing repertoire by
// deleting a large sequential load in both directions.
func TestRemoveDrainsSequential(t *testing.T) {
	for _, desc := range []bool{false, true} {
		tr := New(OrderCmp(tuple.Order{0, 1}))
		const n = 4000
		for i := 0; i < n; i++ {
			tr.Insert(tuple.Tuple{value.Value(i), value.Value(i)})
		}
		for i := 0; i < n; i++ {
			j := i
			if desc {
				j = n - 1 - i
			}
			if !tr.Remove(tuple.Tuple{value.Value(j), value.Value(j)}) {
				t.Fatalf("desc=%v: tuple %d missing at step %d", desc, j, i)
			}
		}
		if tr.Size() != 0 {
			t.Fatalf("desc=%v: tree not drained (size=%d)", desc, tr.Size())
		}
	}
}
