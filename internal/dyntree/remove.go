package dyntree

import (
	"sti/internal/tuple"
)

// Remove deletes k from the tree, reporting whether it was present: CLRS
// B-tree deletion with the runtime comparator, mirroring internal/btree's
// remove.go. k is not retained.
func (t *Tree) Remove(k tuple.Tuple) bool {
	if t.root == nil {
		return false
	}
	if !t.remove(t.root, k) {
		return false
	}
	if t.root.n == 0 {
		if t.root.leaf() {
			t.root = nil
		} else {
			t.root = t.root.children[0]
		}
	}
	t.size--
	return true
}

func (t *Tree) remove(nd *node, k tuple.Tuple) bool {
	for {
		i, found := nd.find(k, t.cmp)
		if nd.leaf() {
			if !found {
				return false
			}
			copy(nd.keys[i:], nd.keys[i+1:int(nd.n)])
			nd.keys[nd.n-1] = nil
			nd.n--
			return true
		}
		if found {
			t.removeFromInternal(nd, i)
			return true
		}
		if int(nd.children[i].n) < degree {
			i = nd.fill(i)
			var foundHere bool
			i, foundHere = nd.find(k, t.cmp)
			if foundHere {
				t.removeFromInternal(nd, i)
				return true
			}
		}
		nd = nd.children[i]
	}
}

func (t *Tree) removeFromInternal(nd *node, i int) {
	k := nd.keys[i]
	switch {
	case int(nd.children[i].n) >= degree:
		pred := maxKey(nd.children[i])
		nd.keys[i] = pred
		t.remove(nd.children[i], pred)
	case int(nd.children[i+1].n) >= degree:
		succ := minKey(nd.children[i+1])
		nd.keys[i] = succ
		t.remove(nd.children[i+1], succ)
	default:
		nd.mergeChildren(i)
		t.remove(nd.children[i], k)
	}
}

func maxKey(nd *node) tuple.Tuple {
	for !nd.leaf() {
		nd = nd.children[nd.n]
	}
	return nd.keys[nd.n-1]
}

func minKey(nd *node) tuple.Tuple {
	for !nd.leaf() {
		nd = nd.children[0]
	}
	return nd.keys[0]
}

func (nd *node) fill(i int) int {
	switch {
	case i > 0 && int(nd.children[i-1].n) >= degree:
		nd.borrowFromLeft(i)
	case i < int(nd.n) && int(nd.children[i+1].n) >= degree:
		nd.borrowFromRight(i)
	case i > 0:
		nd.mergeChildren(i - 1)
		i--
	default:
		nd.mergeChildren(i)
	}
	return i
}

func (nd *node) borrowFromLeft(i int) {
	child, left := nd.children[i], nd.children[i-1]
	copy(child.keys[1:int(child.n)+1], child.keys[:int(child.n)])
	child.keys[0] = nd.keys[i-1]
	if !child.leaf() {
		child.children = append(child.children, nil)
		copy(child.children[1:], child.children)
		child.children[0] = left.children[left.n]
		left.children = left.children[:left.n]
	}
	nd.keys[i-1] = left.keys[left.n-1]
	left.keys[left.n-1] = nil
	left.n--
	child.n++
}

func (nd *node) borrowFromRight(i int) {
	child, right := nd.children[i], nd.children[i+1]
	child.keys[child.n] = nd.keys[i]
	if !child.leaf() {
		child.children = append(child.children, right.children[0])
		copy(right.children, right.children[1:])
		right.children = right.children[:right.n]
	}
	nd.keys[i] = right.keys[0]
	copy(right.keys[:], right.keys[1:int(right.n)])
	right.keys[right.n-1] = nil
	right.n--
	child.n++
}

func (nd *node) mergeChildren(i int) {
	child, right := nd.children[i], nd.children[i+1]
	child.keys[child.n] = nd.keys[i]
	copy(child.keys[int(child.n)+1:], right.keys[:int(right.n)])
	if !child.leaf() {
		child.children = append(child.children, right.children...)
	}
	child.n += right.n + 1

	copy(nd.keys[i:], nd.keys[i+1:int(nd.n)])
	nd.keys[nd.n-1] = nil
	copy(nd.children[i+1:], nd.children[i+2:])
	nd.children = nd.children[:nd.n]
	nd.n--
}
