// Package dyntree implements the *legacy* relation store the paper measures
// against in §5.1: a B-tree whose lexicographic order is given by a runtime
// comparator (an order array interpreted on every comparison) rather than
// being compiled into the structure. Keys are dynamically-sized tuples.
//
// Because the comparator is a runtime argument, no comparison can be
// specialized or inlined, and every key is a separately allocated slice —
// exactly the costs the de-specialization framework removes. It exists only
// as the baseline for the legacy-interpreter experiments.
package dyntree

import (
	"sti/internal/tuple"
)

const degree = 8

const maxKeys = 2*degree - 1

// Cmp is a runtime tuple comparator returning <0, 0, or >0.
type Cmp func(a, b tuple.Tuple) int

// OrderCmp builds the legacy runtime comparator for a lexicographic order:
// it walks the order array and compares the referenced elements.
func OrderCmp(order tuple.Order) Cmp {
	return func(a, b tuple.Tuple) int {
		for _, p := range order {
			switch {
			case a[p] < b[p]:
				return -1
			case a[p] > b[p]:
				return 1
			}
		}
		return 0
	}
}

type node struct {
	keys     [maxKeys]tuple.Tuple
	n        int8
	children []*node
}

func (nd *node) leaf() bool { return nd.children == nil }

func (nd *node) find(k tuple.Tuple, cmp Cmp) (int, bool) {
	lo, hi := 0, int(nd.n)
	for lo < hi {
		mid := (lo + hi) / 2
		if cmp(nd.keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < int(nd.n) && cmp(nd.keys[lo], k) == 0
}

// Tree is an ordered tuple set with a runtime comparator.
type Tree struct {
	cmp  Cmp
	root *node
	size int
}

// New returns an empty tree ordered by cmp.
func New(cmp Cmp) *Tree { return &Tree{cmp: cmp} }

// Size reports the number of stored tuples.
func (t *Tree) Size() int { return t.size }

// Clear removes all tuples.
func (t *Tree) Clear() {
	t.root = nil
	t.size = 0
}

// Swap exchanges contents with another tree in O(1).
func (t *Tree) Swap(o *Tree) {
	t.root, o.root = o.root, t.root
	t.size, o.size = o.size, t.size
}

// Contains reports membership. k is not retained.
func (t *Tree) Contains(k tuple.Tuple) bool {
	nd := t.root
	for nd != nil {
		i, ok := nd.find(k, t.cmp)
		if ok {
			return true
		}
		if nd.leaf() {
			return false
		}
		nd = nd.children[i]
	}
	return false
}

// Insert adds a copy of k, reporting whether it was newly added.
func (t *Tree) Insert(k tuple.Tuple) bool {
	if t.root == nil {
		t.root = &node{}
		t.root.keys[0] = tuple.Clone(k)
		t.root.n = 1
		t.size = 1
		return true
	}
	if int(t.root.n) == maxKeys {
		r := &node{children: make([]*node, 1, 2*degree)}
		r.children[0] = t.root
		r.splitChild(0)
		t.root = r
	}
	if t.insertNonFull(t.root, k) {
		t.size++
		return true
	}
	return false
}

func (nd *node) splitChild(i int) {
	child := nd.children[i]
	right := &node{}
	right.n = degree - 1
	copy(right.keys[:], child.keys[degree:])
	if !child.leaf() {
		right.children = make([]*node, degree, 2*degree)
		copy(right.children, child.children[degree:])
		child.children = child.children[:degree]
	}
	median := child.keys[degree-1]
	for j := degree - 1; j < maxKeys; j++ {
		child.keys[j] = nil
	}
	child.n = degree - 1

	nd.children = append(nd.children, nil)
	copy(nd.children[i+2:], nd.children[i+1:])
	nd.children[i+1] = right
	copy(nd.keys[i+1:], nd.keys[i:int(nd.n)])
	nd.keys[i] = median
	nd.n++
}

func (t *Tree) insertNonFull(nd *node, k tuple.Tuple) bool {
	for {
		i, ok := nd.find(k, t.cmp)
		if ok {
			return false
		}
		if nd.leaf() {
			copy(nd.keys[i+1:], nd.keys[i:int(nd.n)])
			nd.keys[i] = tuple.Clone(k)
			nd.n++
			return true
		}
		if int(nd.children[i].n) == maxKeys {
			nd.splitChild(i)
			if c := t.cmp(nd.keys[i], k); c == 0 {
				return false
			} else if c < 0 {
				i++
			}
		}
		nd = nd.children[i]
	}
}

// Iter is a forward iterator, optionally bounded above (inclusive).
type Iter struct {
	cmp     Cmp
	stack   []frame
	hi      tuple.Tuple
	bounded bool
}

type frame struct {
	nd *node
	i  int
}

// Iter enumerates all tuples in comparator order.
func (t *Tree) Iter() *Iter {
	it := &Iter{cmp: t.cmp}
	it.pushLeft(t.root)
	return it
}

// Range enumerates tuples k with lo <= k <= hi in comparator order.
func (t *Tree) Range(lo, hi tuple.Tuple) *Iter {
	it := &Iter{cmp: t.cmp, hi: tuple.Clone(hi), bounded: true}
	it.seek(t.root, lo)
	return it
}

func (it *Iter) pushLeft(nd *node) {
	for nd != nil {
		it.stack = append(it.stack, frame{nd, 0})
		if nd.leaf() {
			return
		}
		nd = nd.children[0]
	}
}

func (it *Iter) seek(nd *node, lo tuple.Tuple) {
	for nd != nil {
		i, _ := nd.find(lo, it.cmp)
		it.stack = append(it.stack, frame{nd, i})
		if nd.leaf() {
			return
		}
		nd = nd.children[i]
	}
}

// Next returns the next tuple, or ok=false when exhausted. The returned
// slice is the stored key; callers must not mutate it.
func (it *Iter) Next() (tuple.Tuple, bool) {
	for len(it.stack) > 0 {
		top := &it.stack[len(it.stack)-1]
		nd := top.nd
		if top.i < int(nd.n) {
			k := nd.keys[top.i]
			if it.bounded && it.cmp(k, it.hi) > 0 {
				it.stack = it.stack[:0]
				return nil, false
			}
			top.i++
			if !nd.leaf() {
				it.pushLeft(nd.children[top.i])
			}
			return k, true
		}
		it.stack = it.stack[:len(it.stack)-1]
	}
	return nil, false
}
