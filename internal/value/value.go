// Package value defines the 32-bit machine word used throughout the engine.
//
// Following the paper's second de-specialization step (§3), every datum a
// relation stores — signed numbers, unsigned numbers, floats, and interned
// symbols — is reduced to a single 32-bit bit pattern. Typed interpretation
// happens only at the edges: functor evaluation, I/O, and printing. This
// shrinks the specialization space of the relational data structures from
// {implementation × arity × element types × orders} down to
// {implementation × arity}.
package value

import (
	"math"
	"strconv"
)

// Value is the universal 32-bit word ("RamDomain" in Soufflé). The bit
// pattern is reinterpreted as int32, uint32, float32, or a symbol-table
// ordinal depending on the declared attribute type.
type Value = uint32

// Type describes how a Value's bits are to be interpreted.
type Type uint8

// The four primitive attribute types of the source language.
const (
	Number   Type = iota // signed 32-bit integer
	Unsigned             // unsigned 32-bit integer
	Float                // IEEE-754 binary32
	Symbol               // ordinal into the symbol table
)

// String returns the source-language spelling of the type.
func (t Type) String() string {
	switch t {
	case Number:
		return "number"
	case Unsigned:
		return "unsigned"
	case Float:
		return "float"
	case Symbol:
		return "symbol"
	default:
		return "type(" + strconv.Itoa(int(t)) + ")"
	}
}

// FromInt encodes a signed integer.
func FromInt(i int32) Value { return Value(i) }

// AsInt decodes a signed integer.
func AsInt(v Value) int32 { return int32(v) }

// FromFloat encodes a float.
func FromFloat(f float32) Value { return math.Float32bits(f) }

// AsFloat decodes a float.
func AsFloat(v Value) float32 { return math.Float32frombits(v) }

// Compare orders two values under the interpretation given by t. Note the
// caveat from the paper: the *storage* order inside indexes is always the
// unsigned bit-pattern order, so indexed range queries on float or signed
// attributes may not coincide with numeric order; comparisons evaluated by
// the interpreter (constraints, max/min functors) use this typed ordering.
func Compare(t Type, a, b Value) int {
	switch t {
	case Number:
		x, y := int32(a), int32(b)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case Float:
		x, y := AsFloat(a), AsFloat(b)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	default: // Unsigned, Symbol: plain bit-pattern order
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
}
