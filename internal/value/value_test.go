package value

import (
	"testing"
	"testing/quick"
)

func TestIntRoundTrip(t *testing.T) {
	for _, i := range []int32{0, 1, -1, 1 << 30, -(1 << 30), 2147483647, -2147483648} {
		if AsInt(FromInt(i)) != i {
			t.Errorf("int round trip failed for %d", i)
		}
	}
}

func TestFloatRoundTrip(t *testing.T) {
	for _, f := range []float32{0, 1.5, -2.25, 3.4e38, -1e-38} {
		if AsFloat(FromFloat(f)) != f {
			t.Errorf("float round trip failed for %g", f)
		}
	}
}

func TestQuickRoundTrips(t *testing.T) {
	if err := quick.Check(func(i int32) bool { return AsInt(FromInt(i)) == i }, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(f float32) bool {
		v := AsFloat(FromFloat(f))
		return v == f || (v != v && f != f) // NaN-safe
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareNumber(t *testing.T) {
	// Signed comparison differs from bit-pattern comparison for negatives.
	neg, pos := FromInt(-5), FromInt(5)
	if Compare(Number, neg, pos) != -1 {
		t.Error("-5 should be < 5 as number")
	}
	if Compare(Unsigned, neg, pos) != 1 {
		t.Error("bits of -5 should be > 5 as unsigned")
	}
}

func TestCompareFloat(t *testing.T) {
	a, b := FromFloat(-1.5), FromFloat(2.5)
	if Compare(Float, a, b) != -1 || Compare(Float, b, a) != 1 || Compare(Float, a, a) != 0 {
		t.Error("float comparison wrong")
	}
}

func TestCompareSymbolAndUnsigned(t *testing.T) {
	if Compare(Symbol, 3, 7) != -1 || Compare(Unsigned, 7, 3) != 1 || Compare(Symbol, 4, 4) != 0 {
		t.Error("ordinal comparison wrong")
	}
}

func TestTypeString(t *testing.T) {
	want := map[Type]string{Number: "number", Unsigned: "unsigned", Float: "float", Symbol: "symbol"}
	for ty, s := range want {
		if ty.String() != s {
			t.Errorf("%v.String() = %q, want %q", ty, ty.String(), s)
		}
	}
}
