// Package indexselect implements automatic index selection for primitive
// searches (Subotić et al., PVLDB 2018 — the pre-runtime optimization the
// paper's §2 relies on: "automatically computing indices for fast primitive
// searches").
//
// Every primitive search on a relation is a *search signature*: the set of
// bound columns. A lexicographic order serves a signature iff the bound
// columns form a prefix of the order, so one order serves any chain of
// signatures σ1 ⊂ σ2 ⊂ ... ⊂ σk. The minimum number of indexes for a
// relation is therefore the minimum chain cover of the signature poset,
// which by Dilworth/König equals |signatures| − |maximum bipartite
// matching| on the strict-containment graph. We compute the matching with
// Hopcroft–Karp and derive one order per chain.
package indexselect

import (
	"math/bits"
	"sort"

	"sti/internal/tuple"
)

// Signature is a set of bound source columns, bit i = column i.
type Signature uint32

// Has reports whether column i is bound.
func (s Signature) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// Count is the number of bound columns.
func (s Signature) Count() int { return bits.OnesCount32(uint32(s)) }

// ContainsStrict reports whether s ⊂ t (strictly).
func (s Signature) subsetOf(t Signature) bool {
	return s != t && s&t == s
}

// Columns lists the bound columns in ascending order.
func (s Signature) Columns() []int {
	var cols []int
	for i := 0; i < 32; i++ {
		if s.Has(i) {
			cols = append(cols, i)
		}
	}
	return cols
}

// Of builds a signature from bound column positions.
func Of(cols ...int) Signature {
	var s Signature
	for _, c := range cols {
		s |= 1 << uint(c)
	}
	return s
}

// Placement locates a search on a selected index: which index serves it and
// how long the bound prefix is.
type Placement struct {
	Index  int
	Prefix int
}

// Result is the outcome of index selection for one relation.
type Result struct {
	Orders     []tuple.Order
	Placements map[Signature]Placement
}

// Select computes a minimal set of lexicographic orders covering all search
// signatures of a relation with the given arity, and the placement of each
// signature. The zero (full-scan) signature is always served by index 0
// with prefix 0. At least one order is always returned.
func Select(arity int, searches []Signature) *Result {
	// Deduplicate; drop the empty signature (any index serves it).
	set := map[Signature]bool{}
	for _, s := range searches {
		if s != 0 {
			set[s] = true
		}
	}
	sigs := make([]Signature, 0, len(set))
	for s := range set {
		sigs = append(sigs, s)
	}
	// Deterministic processing order: by popcount, then value.
	sort.Slice(sigs, func(i, j int) bool {
		if c1, c2 := sigs[i].Count(), sigs[j].Count(); c1 != c2 {
			return c1 < c2
		}
		return sigs[i] < sigs[j]
	})

	res := &Result{Placements: map[Signature]Placement{}}
	if len(sigs) == 0 {
		res.Orders = []tuple.Order{tuple.Identity(arity)}
		res.Placements[0] = Placement{Index: 0, Prefix: 0}
		return res
	}

	// Bipartite graph: left u — right v when sigs[u] ⊂ sigs[v].
	n := len(sigs)
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if sigs[u].subsetOf(sigs[v]) {
				adj[u] = append(adj[u], v)
			}
		}
	}
	matchL, matchR := hopcroftKarp(n, n, adj)

	// Chains: start at left nodes that are not anyone's successor, follow
	// the matching.
	isSuccessor := make([]bool, n)
	for u := 0; u < n; u++ {
		if matchL[u] != -1 {
			isSuccessor[matchL[u]] = true
		}
	}
	for start := 0; start < n; start++ {
		if isSuccessor[start] {
			continue
		}
		chain := []int{start}
		for u := start; matchL[u] != -1; u = matchL[u] {
			chain = append(chain, matchL[u])
		}
		idx := len(res.Orders)
		res.Orders = append(res.Orders, chainOrder(arity, sigs, chain))
		for _, ci := range chain {
			res.Placements[sigs[ci]] = Placement{Index: idx, Prefix: sigs[ci].Count()}
		}
	}
	_ = matchR
	res.Placements[0] = Placement{Index: 0, Prefix: 0}
	return res
}

// chainOrder builds the lexicographic order serving a chain of signatures:
// the columns of the smallest signature first (ascending), then each
// successive difference, then any remaining columns.
func chainOrder(arity int, sigs []Signature, chain []int) tuple.Order {
	var order tuple.Order
	var prev Signature
	for _, ci := range chain {
		for _, c := range (sigs[ci] &^ prev).Columns() {
			order = append(order, c)
		}
		prev = sigs[ci]
	}
	for c := 0; c < arity; c++ {
		if !prev.Has(c) {
			order = append(order, c)
		}
	}
	return order
}

// hopcroftKarp computes a maximum matching in a bipartite graph with nl
// left and nr right vertices. Returns the match arrays (−1 = unmatched).
func hopcroftKarp(nl, nr int, adj [][]int) (matchL, matchR []int) {
	const inf = int(^uint(0) >> 1)
	matchL = make([]int, nl)
	matchR = make([]int, nr)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int, nl)

	bfs := func() bool {
		queue := make([]int, 0, nl)
		for u := 0; u < nl; u++ {
			if matchL[u] == -1 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range adj[u] {
				w := matchR[v]
				if w == -1 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range adj[u] {
			w := matchR[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	for bfs() {
		for u := 0; u < nl; u++ {
			if matchL[u] == -1 {
				dfs(u)
			}
		}
	}
	return matchL, matchR
}
