package indexselect

import (
	"math/rand"
	"testing"

	"sti/internal/tuple"
)

// verify checks that every signature's placement is valid: the placed index
// exists, its order is a permutation, and the signature's columns are
// exactly the first Prefix columns of the order.
func verify(t *testing.T, arity int, searches []Signature, res *Result) {
	t.Helper()
	if len(res.Orders) == 0 {
		t.Fatal("no orders")
	}
	for _, o := range res.Orders {
		if len(o) != arity || !o.Valid() {
			t.Fatalf("invalid order %v for arity %d", o, arity)
		}
	}
	for _, s := range searches {
		pl, ok := res.Placements[s]
		if !ok {
			t.Fatalf("signature %b has no placement", s)
		}
		if pl.Index >= len(res.Orders) {
			t.Fatalf("placement index %d out of range", pl.Index)
		}
		if pl.Prefix != s.Count() {
			t.Fatalf("signature %b placed with prefix %d, want %d", s, pl.Prefix, s.Count())
		}
		order := res.Orders[pl.Index]
		for i := 0; i < pl.Prefix; i++ {
			if !s.Has(order[i]) {
				t.Fatalf("signature %b not a prefix of order %v", s, order)
			}
		}
	}
}

func TestSignatureHelpers(t *testing.T) {
	s := Of(0, 2, 5)
	if !s.Has(0) || s.Has(1) || !s.Has(2) || !s.Has(5) {
		t.Fatal("Has wrong")
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d", s.Count())
	}
	cols := s.Columns()
	if len(cols) != 3 || cols[0] != 0 || cols[1] != 2 || cols[2] != 5 {
		t.Fatalf("Columns = %v", cols)
	}
}

func TestNoSearches(t *testing.T) {
	res := Select(3, nil)
	if len(res.Orders) != 1 || !res.Orders[0].IsIdentity() {
		t.Fatalf("orders = %v", res.Orders)
	}
}

func TestSingleSearch(t *testing.T) {
	searches := []Signature{Of(1)}
	res := Select(3, searches)
	verify(t, 3, searches, res)
	if len(res.Orders) != 1 {
		t.Fatalf("orders = %v", res.Orders)
	}
	if res.Orders[0][0] != 1 {
		t.Fatalf("order %v does not lead with column 1", res.Orders[0])
	}
}

func TestChainCollapses(t *testing.T) {
	// {0} ⊂ {0,1} ⊂ {0,1,2}: one index suffices.
	searches := []Signature{Of(0), Of(0, 1), Of(0, 1, 2)}
	res := Select(3, searches)
	verify(t, 3, searches, res)
	if len(res.Orders) != 1 {
		t.Fatalf("chain needed %d orders: %v", len(res.Orders), res.Orders)
	}
}

func TestAntichainNeedsTwo(t *testing.T) {
	// {0} and {1} are incomparable: two indexes.
	searches := []Signature{Of(0), Of(1)}
	res := Select(2, searches)
	verify(t, 2, searches, res)
	if len(res.Orders) != 2 {
		t.Fatalf("antichain got %d orders: %v", len(res.Orders), res.Orders)
	}
}

func TestDiamond(t *testing.T) {
	// {0}, {1}, {0,1}: the chain {0}⊂{0,1} plus {1} alone = 2 indexes.
	searches := []Signature{Of(0), Of(1), Of(0, 1)}
	res := Select(2, searches)
	verify(t, 2, searches, res)
	if len(res.Orders) != 2 {
		t.Fatalf("diamond got %d orders: %v", len(res.Orders), res.Orders)
	}
}

func TestPaperStyleExample(t *testing.T) {
	// Searches on a 4-ary relation: {0}, {0,1}, {2}, {2,3}, {0,1,2,3}.
	// Chains: {0}⊂{0,1}⊂{0,1,2,3} and {2}⊂{2,3} -> 2 indexes.
	searches := []Signature{Of(0), Of(0, 1), Of(2), Of(2, 3), Of(0, 1, 2, 3)}
	res := Select(4, searches)
	verify(t, 4, searches, res)
	if len(res.Orders) != 2 {
		t.Fatalf("got %d orders: %v", len(res.Orders), res.Orders)
	}
}

func TestZeroSignaturePlacement(t *testing.T) {
	res := Select(2, []Signature{0, Of(1)})
	if pl := res.Placements[0]; pl.Index != 0 || pl.Prefix != 0 {
		t.Fatalf("zero signature placed at %+v", pl)
	}
}

// bruteMinChains computes the minimum chain cover size by brute force
// (exponential; only for tiny inputs).
func bruteMinChains(sigs []Signature) int {
	n := len(sigs)
	if n == 0 {
		return 0
	}
	best := n
	// Assign each signature to a chain id; try all assignments up to best.
	assign := make([]int, n)
	var rec func(i, used int)
	valid := func(chain []Signature) bool {
		// A set is a chain iff pairwise comparable.
		for i := 0; i < len(chain); i++ {
			for j := i + 1; j < len(chain); j++ {
				a, b := chain[i], chain[j]
				if !(a.subsetOf(b) || b.subsetOf(a) || a == b) {
					return false
				}
			}
		}
		return true
	}
	rec = func(i, used int) {
		if used >= best {
			return
		}
		if i == n {
			chains := make([][]Signature, used)
			for k, c := range assign[:n] {
				chains[c] = append(chains[c], sigs[k])
			}
			for _, c := range chains {
				if !valid(c) {
					return
				}
			}
			best = used
			return
		}
		for c := 0; c <= used && c < best; c++ {
			assign[i] = c
			nu := used
			if c == used {
				nu++
			}
			rec(i+1, nu)
		}
	}
	rec(0, 0)
	return best
}

// TestMinimalityAgainstBruteForce: the matching-based cover is minimal for
// random small signature sets.
func TestMinimalityAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		arity := 2 + rng.Intn(3) // 2..4
		maxDistinct := 1<<uint(arity) - 1
		nsig := 1 + rng.Intn(5)
		if nsig > maxDistinct {
			nsig = maxDistinct
		}
		seen := map[Signature]bool{}
		var sigs []Signature
		for len(sigs) < nsig {
			s := Signature(rng.Intn(1<<uint(arity)-1) + 1)
			if !seen[s] {
				seen[s] = true
				sigs = append(sigs, s)
			}
		}
		res := Select(arity, sigs)
		verify(t, arity, sigs, res)
		want := bruteMinChains(sigs)
		if len(res.Orders) != want {
			t.Fatalf("trial %d: sigs %v got %d orders, brute force says %d",
				trial, sigs, len(res.Orders), want)
		}
	}
}

func TestDeterministic(t *testing.T) {
	searches := []Signature{Of(0), Of(1), Of(0, 1), Of(2)}
	first := Select(3, searches)
	for i := 0; i < 10; i++ {
		again := Select(3, searches)
		if len(again.Orders) != len(first.Orders) {
			t.Fatal("non-deterministic order count")
		}
		for j := range first.Orders {
			if !ordersEqual(first.Orders[j], again.Orders[j]) {
				t.Fatalf("non-deterministic orders: %v vs %v", first.Orders, again.Orders)
			}
		}
	}
}

func ordersEqual(a, b tuple.Order) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
