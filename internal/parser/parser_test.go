package parser

import (
	"strings"
	"testing"

	"sti/internal/ast"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse failed: %v\nsource:\n%s", err, src)
	}
	return p
}

func TestDecl(t *testing.T) {
	p := parse(t, `.decl edge(x:number, y:number)`)
	if len(p.Decls) != 1 {
		t.Fatalf("decls = %d", len(p.Decls))
	}
	d := p.Decls[0]
	if d.Name != "edge" || d.Arity() != 2 || d.Attrs[0].Name != "x" {
		t.Fatalf("decl = %+v", d)
	}
	if d.Rep != ast.RepDefault {
		t.Fatalf("rep = %v", d.Rep)
	}
}

func TestDeclQualifiers(t *testing.T) {
	p := parse(t, `
.decl a(x:number) btree
.decl b(x:number) brie
.decl e(x:number, y:number) eqrel
.decl n()
`)
	if p.Decls[0].Rep != ast.RepBTree || p.Decls[1].Rep != ast.RepBrie || p.Decls[2].Rep != ast.RepEqRel {
		t.Fatal("qualifiers wrong")
	}
	if p.Decls[3].Arity() != 0 {
		t.Fatal("nullary decl wrong")
	}
}

func TestDirectives(t *testing.T) {
	p := parse(t, ".decl r(x:number)\n.input r\n.output r\n.printsize r")
	if len(p.Directives) != 3 {
		t.Fatalf("directives = %d", len(p.Directives))
	}
	kinds := []ast.DirectiveKind{ast.DirInput, ast.DirOutput, ast.DirPrintSize}
	for i, d := range p.Directives {
		if d.Kind != kinds[i] || d.Rel != "r" {
			t.Fatalf("directive %d = %+v", i, d)
		}
	}
}

func TestFactAndRule(t *testing.T) {
	p := parse(t, `
.decl parent(a:symbol, b:symbol)
.decl gp(a:symbol, b:symbol)
parent("Bob", "Alice").
gp(x, z) :- parent(x, y), parent(y, z).
`)
	if len(p.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(p.Clauses))
	}
	if !p.Clauses[0].IsFact() || p.Clauses[1].IsFact() {
		t.Fatal("fact/rule classification wrong")
	}
	rule := p.Clauses[1]
	if len(rule.Body) != 2 {
		t.Fatalf("body = %d literals", len(rule.Body))
	}
	if _, ok := rule.Body[0].(*ast.Atom); !ok {
		t.Fatalf("body[0] = %T", rule.Body[0])
	}
}

func TestNegationAndConstraints(t *testing.T) {
	p := parse(t, `
.decl u(x:number)
.decl e(x:number, y:number)
.decl p(x:number)
u(y) :- u(x), e(x, y), !p(y), x < y, y != 3.
`)
	body := p.Clauses[0].Body
	if len(body) != 5 {
		t.Fatalf("body = %d literals", len(body))
	}
	if n, ok := body[2].(*ast.Negation); !ok || n.Atom.Name != "p" {
		t.Fatalf("body[2] = %T", body[2])
	}
	if c, ok := body[3].(*ast.Constraint); !ok || c.Op != ast.CmpLT {
		t.Fatalf("body[3] = %+v", body[3])
	}
	if c, ok := body[4].(*ast.Constraint); !ok || c.Op != ast.CmpNE {
		t.Fatalf("body[4] = %+v", body[4])
	}
}

func TestDisjunctionExpands(t *testing.T) {
	p := parse(t, `
.decl a(x:number)
.decl b(x:number)
.decl c(x:number)
a(x) :- b(x) ; c(x).
`)
	if len(p.Clauses) != 2 {
		t.Fatalf("disjunction expanded to %d clauses", len(p.Clauses))
	}
	if p.Clauses[0].Head.Name != "a" || p.Clauses[1].Head.Name != "a" {
		t.Fatal("heads wrong")
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	p := parse(t, `
.decl r(x:number)
r(y) :- r(x), y = 1 + 2 * 3.
`)
	cons := p.Clauses[0].Body[1].(*ast.Constraint)
	s := ast.ExprString(cons.R)
	if s != "(1 + (2 * 3))" {
		t.Fatalf("precedence: %s", s)
	}
}

func TestPowerRightAssociative(t *testing.T) {
	p := parse(t, ".decl r(x:number)\nr(y) :- r(x), y = 2 ^ 3 ^ 2.")
	cons := p.Clauses[0].Body[1].(*ast.Constraint)
	if s := ast.ExprString(cons.R); s != "(2 ^ (3 ^ 2))" {
		t.Fatalf("power associativity: %s", s)
	}
}

func TestKeywordOperators(t *testing.T) {
	p := parse(t, ".decl r(x:number)\nr(y) :- r(x), y = x band 7 bor 1.")
	cons := p.Clauses[0].Body[1].(*ast.Constraint)
	if s := ast.ExprString(cons.R); s != "((x band 7) bor 1)" {
		t.Fatalf("keyword ops: %s", s)
	}
}

func TestUnaryFolding(t *testing.T) {
	p := parse(t, ".decl r(x:number)\nr(-5).")
	lit, ok := p.Clauses[0].Head.Args[0].(*ast.NumLit)
	if !ok || lit.Val != -5 {
		t.Fatalf("negative literal = %v", ast.ExprString(p.Clauses[0].Head.Args[0]))
	}
}

func TestWildcard(t *testing.T) {
	p := parse(t, ".decl e(x:number,y:number)\n.decl n(x:number)\nn(x) :- e(x, _).")
	if _, ok := p.Clauses[0].Body[0].(*ast.Atom).Args[1].(*ast.Wildcard); !ok {
		t.Fatal("wildcard not parsed")
	}
}

func TestAggregates(t *testing.T) {
	p := parse(t, `
.decl e(x:number, y:number)
.decl r(x:number)
r(n) :- e(x, _), n = count : { e(x, _) }.
r(s) :- e(x, _), s = sum y : { e(x, y) }.
r(m) :- e(x, _), m = min y : { e(x, y) }.
`)
	for i, wantKind := range []ast.AggKind{ast.AggCount, ast.AggSum, ast.AggMin} {
		cons := p.Clauses[i].Body[1].(*ast.Constraint)
		agg, ok := cons.R.(*ast.Aggregate)
		if !ok {
			t.Fatalf("clause %d: RHS = %T", i, cons.R)
		}
		if agg.Kind != wantKind {
			t.Fatalf("clause %d: kind = %v", i, agg.Kind)
		}
		if (wantKind == ast.AggCount) != (agg.Target == nil) {
			t.Fatalf("clause %d: target = %v", i, agg.Target)
		}
	}
}

func TestMinAsFunctor(t *testing.T) {
	p := parse(t, ".decl r(x:number)\nr(y) :- r(x), y = min(x, 3).")
	cons := p.Clauses[0].Body[1].(*ast.Constraint)
	call, ok := cons.R.(*ast.Call)
	if !ok || call.Name != "min" || len(call.Args) != 2 {
		t.Fatalf("min functor = %v", ast.ExprString(cons.R))
	}
}

func TestStringFunctors(t *testing.T) {
	p := parse(t, `.decl r(s:symbol)
r(cat(s, "x")) :- r(s), strlen(s) < 5.`)
	if _, ok := p.Clauses[0].Head.Args[0].(*ast.Call); !ok {
		t.Fatal("cat not parsed as call")
	}
}

func TestLiterals(t *testing.T) {
	p := parse(t, `.decl r(a:number, b:unsigned, c:float, d:symbol)
r(1, 2u, 3.5, "s").`)
	args := p.Clauses[0].Head.Args
	if _, ok := args[0].(*ast.NumLit); !ok {
		t.Errorf("arg0 = %T", args[0])
	}
	if u, ok := args[1].(*ast.UnsignedLit); !ok || u.Val != 2 {
		t.Errorf("arg1 = %T", args[1])
	}
	if f, ok := args[2].(*ast.FloatLit); !ok || f.Val != 3.5 {
		t.Errorf("arg2 = %T", args[2])
	}
	if s, ok := args[3].(*ast.StrLit); !ok || s.Val != "s" {
		t.Errorf("arg3 = %T", args[3])
	}
}

func TestRoundTrip(t *testing.T) {
	src := `.decl edge(x:number, y:number)
.decl path(x:number, y:number) brie
.input edge
.output path
edge(1, 2).
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z), x != z.
`
	p1 := parse(t, src)
	rendered := p1.String()
	p2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse of rendered program failed: %v\n%s", err, rendered)
	}
	if p1.String() != p2.String() {
		t.Fatalf("round trip unstable:\n%s\nvs\n%s", p1.String(), p2.String())
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		".decl",                   // missing name
		".decl r(x)",              // missing type
		".decl r(x:bogus)",        // bad type
		".decl r(x:number) funky", // bad qualifier
		"r(x",                     // unterminated atom
		"r(x) :- .",               // empty body
		"r(x) :- s(x)",            // missing dot
		"r(x) :- 3.",              // number is not a literal
		"r(x) :- x.",              // var is not a literal
		".input",                  // missing relation
		"r(x) :- s(x), y = .",     // missing expr
		"r() :- count : { }.",     // empty aggregate body
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted invalid program %q", src)
		}
	}
}

func TestErrorsCarryPosition(t *testing.T) {
	_, err := Parse(".decl r(x:number)\nr(x :- s(x).")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error lacks line 2 position: %v", err)
	}
}
