package parser

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sti/internal/ast"
)

// genExpr builds a random well-formed expression over variables x, y.
func genExpr(rng *rand.Rand, depth int) ast.Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(4) {
		case 0:
			return &ast.NumLit{Val: int32(rng.Intn(100))}
		case 1:
			return &ast.Var{Name: "x"}
		case 2:
			return &ast.Var{Name: "y"}
		default:
			return &ast.NumLit{Val: -int32(rng.Intn(100)) - 1}
		}
	}
	ops := []ast.BinOp{
		ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpBAnd, ast.OpBOr,
		ast.OpBXor, ast.OpBShl, ast.OpBShr,
	}
	switch rng.Intn(6) {
	case 0:
		return &ast.UnExpr{Op: ast.OpBNot, E: genExpr(rng, depth-1)}
	case 1:
		return &ast.Call{Name: "min", Args: []ast.Expr{genExpr(rng, depth-1), genExpr(rng, depth-1)}}
	default:
		return &ast.BinExpr{
			Op: ops[rng.Intn(len(ops))],
			L:  genExpr(rng, depth-1),
			R:  genExpr(rng, depth-1),
		}
	}
}

// TestRandomExpressionRoundTrip: printing a random expression and parsing
// it back yields the identical rendering (print∘parse∘print = print).
func TestRandomExpressionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		e := genExpr(rng, 4)
		src := fmt.Sprintf(".decl r(x:number, y:number)\n.decl s(x:number)\ns(%s) :- r(x, y).",
			ast.ExprString(e))
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: %v\nsource: %s", trial, err, src)
		}
		rendered := p1.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("trial %d re-parse: %v\n%s", trial, err, rendered)
		}
		if p2.String() != rendered {
			t.Fatalf("trial %d unstable:\n%s\nvs\n%s", trial, rendered, p2.String())
		}
	}
}

// TestRandomClauseRoundTrip exercises whole clauses with negation,
// constraints, and aggregates.
func TestRandomClauseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	cmps := []string{"<", "<=", ">", ">=", "=", "!="}
	for trial := 0; trial < 200; trial++ {
		var body []string
		body = append(body, "r(x, y)")
		if rng.Intn(2) == 0 {
			body = append(body, "!t(x)")
		}
		if rng.Intn(2) == 0 {
			body = append(body, fmt.Sprintf("%s %s %s",
				ast.ExprString(genExpr(rng, 2)), cmps[rng.Intn(len(cmps))], ast.ExprString(genExpr(rng, 2))))
		}
		if rng.Intn(3) == 0 {
			body = append(body, "n = count : { r(x, _) }")
		}
		src := fmt.Sprintf(`.decl r(x:number, y:number)
.decl t(x:number)
.decl s(x:number)
.decl u(x:number, n:number)
s(x) :- %s.`, strings.Join(body, ", "))
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		rendered := p1.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("trial %d re-parse: %v\n%s", trial, err, rendered)
		}
		if p2.String() != rendered {
			t.Fatalf("trial %d unstable:\n%s\nvs\n%s", trial, rendered, p2.String())
		}
	}
}
