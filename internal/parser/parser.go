// Package parser builds the AST from source text with a hand-written
// recursive-descent parser (one-token lookahead, precedence climbing for
// expressions).
package parser

import (
	"fmt"

	"sti/internal/ast"
	"sti/internal/lexer"
	"sti/internal/value"
)

// Error is a syntax error with position.
type Error struct {
	Msg string
	Pos ast.Pos
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Pos.Line, e.Pos.Col, e.Msg)
}

// Parse parses a complete program.
func Parse(src string) (*ast.Program, error) {
	p := &parser{lex: lexer.New(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	prog := &ast.Program{}
	for p.cur.Kind != lexer.EOF {
		switch {
		case p.cur.Kind == lexer.Directive && p.cur.Text == "decl":
			d, err := p.decl()
			if err != nil {
				return nil, err
			}
			prog.Decls = append(prog.Decls, d)
		case p.cur.Kind == lexer.Directive:
			d, err := p.directive()
			if err != nil {
				return nil, err
			}
			prog.Directives = append(prog.Directives, d)
		default:
			cs, err := p.clause()
			if err != nil {
				return nil, err
			}
			prog.Clauses = append(prog.Clauses, cs...)
		}
	}
	return prog, nil
}

type parser struct {
	lex  *lexer.Lexer
	cur  lexer.Token
	peek lexer.Token
}

func (p *parser) next() error {
	p.cur = p.peek
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.peek = t
	return nil
}

func (p *parser) errf(pos ast.Pos, format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...), Pos: pos}
}

func (p *parser) expect(k lexer.Kind) (lexer.Token, error) {
	if p.cur.Kind != k {
		return lexer.Token{}, p.errf(p.cur.Pos, "expected %v, found %v", k, p.describe(p.cur))
	}
	t := p.cur
	if err := p.next(); err != nil {
		return lexer.Token{}, err
	}
	return t, nil
}

func (p *parser) describe(t lexer.Token) string {
	if t.Kind == lexer.Ident {
		return fmt.Sprintf("identifier %q", t.Text)
	}
	return t.Kind.String()
}

// decl := .decl NAME ( attr, ... ) [btree|brie|eqrel]
func (p *parser) decl() (*ast.RelationDecl, error) {
	pos := p.cur.Pos
	if err := p.next(); err != nil { // consume .decl
		return nil, err
	}
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	d := &ast.RelationDecl{Name: name.Text, Pos: pos}
	if p.cur.Kind != lexer.RParen {
		for {
			attr, err := p.attr()
			if err != nil {
				return nil, err
			}
			d.Attrs = append(d.Attrs, attr)
			if p.cur.Kind != lexer.Comma {
				break
			}
			if err := p.next(); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	// A representation qualifier, if present, directly follows the closing
	// parenthesis. Any other identifier starts the next item.
	if p.cur.Kind == lexer.Ident {
		switch p.cur.Text {
		case "btree", "brie", "eqrel":
			switch p.cur.Text {
			case "btree":
				d.Rep = ast.RepBTree
			case "brie":
				d.Rep = ast.RepBrie
			case "eqrel":
				d.Rep = ast.RepEqRel
			}
			if err := p.next(); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

func (p *parser) attr() (ast.Attr, error) {
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return ast.Attr{}, err
	}
	if _, err := p.expect(lexer.Colon); err != nil {
		return ast.Attr{}, err
	}
	tname, err := p.expect(lexer.Ident)
	if err != nil {
		return ast.Attr{}, err
	}
	var ty value.Type
	switch tname.Text {
	case "number":
		ty = value.Number
	case "unsigned":
		ty = value.Unsigned
	case "float":
		ty = value.Float
	case "symbol":
		ty = value.Symbol
	default:
		return ast.Attr{}, p.errf(tname.Pos, "unknown type %q (want number, unsigned, float, or symbol)", tname.Text)
	}
	return ast.Attr{Name: name.Text, Type: ty}, nil
}

func (p *parser) directive() (*ast.Directive, error) {
	pos := p.cur.Pos
	var kind ast.DirectiveKind
	switch p.cur.Text {
	case "input":
		kind = ast.DirInput
	case "output":
		kind = ast.DirOutput
	case "printsize":
		kind = ast.DirPrintSize
	default:
		return nil, p.errf(pos, "unknown directive .%s", p.cur.Text)
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	return &ast.Directive{Kind: kind, Rel: name.Text, Pos: pos}, nil
}

// clause := atom [ :- body (";" body)* ] "."
// Disjunctive bodies expand to one clause per disjunct.
func (p *parser) clause() ([]*ast.Clause, error) {
	pos := p.cur.Pos
	head, err := p.atom()
	if err != nil {
		return nil, err
	}
	if p.cur.Kind == lexer.Dot {
		if err := p.next(); err != nil {
			return nil, err
		}
		return []*ast.Clause{{Head: head, Pos: pos}}, nil
	}
	if _, err := p.expect(lexer.ColonDash); err != nil {
		return nil, err
	}
	var clauses []*ast.Clause
	for {
		body, err := p.conjunction()
		if err != nil {
			return nil, err
		}
		clauses = append(clauses, &ast.Clause{Head: head, Body: body, Pos: pos})
		if p.cur.Kind != lexer.Semicolon {
			break
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(lexer.Dot); err != nil {
		return nil, err
	}
	return clauses, nil
}

func (p *parser) conjunction() ([]ast.Literal, error) {
	var body []ast.Literal
	for {
		lit, err := p.literal()
		if err != nil {
			return nil, err
		}
		body = append(body, lit)
		if p.cur.Kind != lexer.Comma {
			return body, nil
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
}

func (p *parser) literal() (ast.Literal, error) {
	if p.cur.Kind == lexer.Bang {
		if err := p.next(); err != nil {
			return nil, err
		}
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		return &ast.Negation{Atom: a}, nil
	}
	pos := p.cur.Pos
	// Parse an expression; a following comparison operator makes this a
	// constraint, otherwise it must have the shape of an atom.
	l, err := p.expr()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOf(p.cur.Kind); ok {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ast.Constraint{Op: op, L: l, R: r, Pos: pos}, nil
	}
	if call, ok := l.(*ast.Call); ok {
		return &ast.Atom{Name: call.Name, Args: call.Args, Pos: call.Pos}, nil
	}
	return nil, p.errf(pos, "expected a literal (atom, negation, or constraint)")
}

func cmpOf(k lexer.Kind) (ast.CmpOp, bool) {
	switch k {
	case lexer.Eq:
		return ast.CmpEQ, true
	case lexer.Ne:
		return ast.CmpNE, true
	case lexer.Lt:
		return ast.CmpLT, true
	case lexer.Le:
		return ast.CmpLE, true
	case lexer.Gt:
		return ast.CmpGT, true
	case lexer.Ge:
		return ast.CmpGE, true
	}
	return 0, false
}

func (p *parser) atom() (*ast.Atom, error) {
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	a := &ast.Atom{Name: name.Text, Pos: name.Pos}
	if p.cur.Kind != lexer.RParen {
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			a.Args = append(a.Args, e)
			if p.cur.Kind != lexer.Comma {
				break
			}
			if err := p.next(); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	return a, nil
}

// Binary operator precedence (higher binds tighter). Keyword operators are
// identifiers in the token stream.
func (p *parser) binOp() (ast.BinOp, int, bool) {
	switch p.cur.Kind {
	case lexer.Plus:
		return ast.OpAdd, 6, true
	case lexer.Minus:
		return ast.OpSub, 6, true
	case lexer.Star:
		return ast.OpMul, 7, true
	case lexer.Slash:
		return ast.OpDiv, 7, true
	case lexer.Percent:
		return ast.OpMod, 7, true
	case lexer.Caret:
		return ast.OpPow, 8, true
	case lexer.Ident:
		switch p.cur.Text {
		case "lor":
			return ast.OpLOr, 1, true
		case "land":
			return ast.OpLAnd, 2, true
		case "bor":
			return ast.OpBOr, 3, true
		case "bxor":
			return ast.OpBXor, 4, true
		case "band":
			return ast.OpBAnd, 5, true
		case "bshl":
			return ast.OpBShl, 6, true
		case "bshr":
			return ast.OpBShr, 6, true
		}
	}
	return 0, 0, false
}

func (p *parser) expr() (ast.Expr, error) { return p.binary(1) }

func (p *parser) binary(minPrec int) (ast.Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op, prec, ok := p.binOp()
		if !ok || prec < minPrec {
			return l, nil
		}
		pos := p.cur.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		// Power is right-associative; everything else left.
		nextMin := prec + 1
		if op == ast.OpPow {
			nextMin = prec
		}
		r, err := p.binary(nextMin)
		if err != nil {
			return nil, err
		}
		l = &ast.BinExpr{Op: op, L: l, R: r, Pos: pos}
	}
}

func (p *parser) unary() (ast.Expr, error) {
	pos := p.cur.Pos
	switch {
	case p.cur.Kind == lexer.Minus:
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		// Fold negation of literals so "-1" is a literal, not an operation.
		if n, ok := e.(*ast.NumLit); ok {
			return &ast.NumLit{Val: -n.Val, Pos: pos}, nil
		}
		if f, ok := e.(*ast.FloatLit); ok {
			return &ast.FloatLit{Val: -f.Val, Pos: pos}, nil
		}
		return &ast.UnExpr{Op: ast.OpNeg, E: e, Pos: pos}, nil
	case p.cur.Kind == lexer.Ident && (p.cur.Text == "bnot" || p.cur.Text == "lnot"):
		op := ast.OpBNot
		if p.cur.Text == "lnot" {
			op = ast.OpLNot
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &ast.UnExpr{Op: op, E: e, Pos: pos}, nil
	}
	return p.primary()
}

// aggKind recognizes aggregate keywords.
func aggKind(name string) (ast.AggKind, bool) {
	switch name {
	case "count":
		return ast.AggCount, true
	case "sum":
		return ast.AggSum, true
	case "min":
		return ast.AggMin, true
	case "max":
		return ast.AggMax, true
	}
	return 0, false
}

func (p *parser) primary() (ast.Expr, error) {
	pos := p.cur.Pos
	switch p.cur.Kind {
	case lexer.Number:
		v := p.cur.Num
		if err := p.next(); err != nil {
			return nil, err
		}
		return &ast.NumLit{Val: int32(v), Pos: pos}, nil
	case lexer.Unsigned:
		v := p.cur.Num
		if err := p.next(); err != nil {
			return nil, err
		}
		return &ast.UnsignedLit{Val: uint32(v), Pos: pos}, nil
	case lexer.Float:
		f := p.cur.F
		if err := p.next(); err != nil {
			return nil, err
		}
		return &ast.FloatLit{Val: f, Pos: pos}, nil
	case lexer.String:
		s := p.cur.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		return &ast.StrLit{Val: s, Pos: pos}, nil
	case lexer.Underscore:
		if err := p.next(); err != nil {
			return nil, err
		}
		return &ast.Wildcard{Pos: pos}, nil
	case lexer.LParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		return e, nil
	case lexer.Ident:
		name := p.cur.Text
		if kind, isAgg := aggKind(name); isAgg && p.peek.Kind != lexer.LParen {
			return p.aggregate(kind, pos)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.cur.Kind == lexer.LParen {
			if err := p.next(); err != nil {
				return nil, err
			}
			call := &ast.Call{Name: name, Pos: pos}
			if p.cur.Kind != lexer.RParen {
				for {
					e, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, e)
					if p.cur.Kind != lexer.Comma {
						break
					}
					if err := p.next(); err != nil {
						return nil, err
					}
				}
			}
			if _, err := p.expect(lexer.RParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &ast.Var{Name: name, Pos: pos}, nil
	}
	return nil, p.errf(pos, "expected an expression, found %v", p.describe(p.cur))
}

// aggregate := KIND [target] ":" "{" conjunction "}"
func (p *parser) aggregate(kind ast.AggKind, pos ast.Pos) (ast.Expr, error) {
	if err := p.next(); err != nil { // consume keyword
		return nil, err
	}
	agg := &ast.Aggregate{Kind: kind, Pos: pos}
	if kind != ast.AggCount {
		t, err := p.unary()
		if err != nil {
			return nil, err
		}
		agg.Target = t
	}
	if _, err := p.expect(lexer.Colon); err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.LBrace); err != nil {
		return nil, err
	}
	body, err := p.conjunction()
	if err != nil {
		return nil, err
	}
	agg.Body = body
	if _, err := p.expect(lexer.RBrace); err != nil {
		return nil, err
	}
	return agg, nil
}
