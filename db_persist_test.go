package sti

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// persistSrc is the durability fixture: a symbol-typed recursive program, so
// recovery must restore symbol ordinals exactly for query output (which
// sorts by those ordinals) to come back byte-identical.
const persistSrc = `
.decl edge(x:symbol, y:symbol)
.decl path(x:symbol, y:symbol)
.input edge
.output path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`

// tinyPersist keeps segments and checkpoints small so short tests cross
// flush, compaction, and checkpoint boundaries.
func tinyPersist(dir string) Option {
	return WithPersistenceConfig(PersistenceConfig{
		Dir:           dir,
		SnapshotEvery: 3,
		FlushKeys:     16,
		MaxSegments:   2,
	})
}

// applyScript drives the same pseudo-random batch sequence (inserts and
// deletions, multiple relations' worth of symbols) against a database.
// Returns the batch count applied.
func applyScript(t *testing.T, db *Database, seed int64, batches int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	node := func() string { return fmt.Sprintf("n%02d", rng.Intn(24)) }
	for i := 0; i < batches; i++ {
		b := db.NewBatch()
		for j := 0; j < 4+rng.Intn(5); j++ {
			b.Add("edge", node(), node())
		}
		if i%3 == 2 {
			b.Delete("edge", node(), node())
		}
		if err := db.Apply(b); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
}

// queryAll renders every queryable observable of the database into one
// string: rows of both relations (text form), sizes, and a patterned query.
func queryAll(t *testing.T, db *Database) string {
	t.Helper()
	var sb strings.Builder
	for _, rel := range []string{"edge", "path"} {
		rows, err := db.QueryText(rel, nil)
		if err != nil {
			t.Fatalf("query %s: %v", rel, err)
		}
		fmt.Fprintf(&sb, "%s %d\n", rel, len(rows))
		for _, r := range rows {
			sb.WriteString(strings.Join(r, "\t"))
			sb.WriteByte('\n')
		}
	}
	if rows, err := db.Query("path", "n01", nil); err == nil {
		fmt.Fprintf(&sb, "probe %v\n", rows)
	} else {
		t.Fatalf("probe query: %v", err)
	}
	return sb.String()
}

// TestPersistMatchesMemory is the acceptance property: a persistent
// database answers every query byte-identically to an in-memory database
// fed the same batches, across Close/reopen, and across a simulated crash
// (WAL present, no clean final snapshot).
func TestPersistMatchesMemory(t *testing.T) {
	dir := t.TempDir()
	const seed, batches = 99, 10

	mem, err := MustParse(persistSrc).Open()
	if err != nil {
		t.Fatalf("open memory db: %v", err)
	}
	defer mem.Close()
	applyScript(t, mem, seed, batches)
	want := queryAll(t, mem)

	// Live persistent database.
	p1 := MustParse(persistSrc)
	db1, err := p1.Open(tinyPersist(dir))
	if err != nil {
		t.Fatalf("open persistent db: %v", err)
	}
	applyScript(t, db1, seed, batches)
	if got := queryAll(t, db1); got != want {
		t.Fatalf("live persistent output differs from memory:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	st := db1.Stats()
	if st.Persist == nil {
		t.Fatal("Stats().Persist is nil on a persistent database")
	}
	if st.Persist.LiveKeys == 0 || st.Persist.Tables == 0 {
		t.Fatalf("durable tier unused: %+v", st.Persist)
	}
	if st.Persist.Snapshots == 0 {
		t.Fatal("no checkpoints taken despite SnapshotEvery=3")
	}
	if err := db1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Clean reopen: recovery from the final snapshot.
	p2 := MustParse(persistSrc)
	db2, err := p2.Open(tinyPersist(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := queryAll(t, db2); got != want {
		t.Fatalf("reopened output differs from memory:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if st := db2.Stats(); !st.Persist.Recovered {
		t.Fatal("reopen did not report Recovered")
	}

	// More batches, then a crash: no Close, WAL tail must carry the delta.
	applyScript(t, db2, seed+1, 4)
	mem2, _ := MustParse(persistSrc).Open()
	defer mem2.Close()
	applyScript(t, mem2, seed, batches)
	applyScript(t, mem2, seed+1, 4)
	want2 := queryAll(t, mem2)
	if got := queryAll(t, db2); got != want2 {
		t.Fatalf("pre-crash output differs from memory reference")
	}
	db2.abandon()

	db3, err := MustParse(persistSrc).Open(tinyPersist(dir))
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db3.Close()
	st3 := db3.Stats()
	if !st3.Persist.Recovered {
		t.Fatal("crash reopen did not report Recovered")
	}
	if st3.Persist.RecoveredRecords == 0 {
		t.Fatal("crash reopen replayed no WAL records; the crash tail was lost")
	}
	if got := queryAll(t, db3); got != want2 {
		t.Fatalf("crash-recovered output differs from memory:\n--- got ---\n%s--- want ---\n%s", got, want2)
	}
}

// TestPersistIncrementalPathSurvives checks that the persistent tier rides
// the incremental update/delete entry points (not permanent recompute
// fallback), and that delete propagation works on durable tables.
func TestPersistIncrementalPathSurvives(t *testing.T) {
	db, err := MustParse(persistSrc).Open(tinyPersist(t.TempDir()))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	if err := db.Apply(db.NewBatch().Add("edge", "a", "b").Add("edge", "b", "c")); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if err := db.Apply(db.NewBatch().Delete("edge", "b", "c")); err != nil {
		t.Fatalf("delete: %v", err)
	}
	st := db.Stats()
	if st.AppliesIncremental != 2 {
		t.Fatalf("want 2 incremental applies, got %+v", st)
	}
	rows, err := db.Query("path")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(rows) != 1 || rows[0][0] != "a" || rows[0][1] != "b" {
		t.Fatalf("path after delete = %v, want [[a b]]", rows)
	}
}

// TestPersistGatesEqrel verifies an input eqrel relation is kept on the
// in-memory tier with a recorded reason, while the database still works.
func TestPersistGatesEqrel(t *testing.T) {
	src := `
.decl same(x:number, y:number) eqrel
.decl edge(x:number, y:number)
.decl out(x:number, y:number)
.input same
.input edge
.output out
out(x, y) :- same(x, y), edge(x, y).
`
	db, err := MustParse(src).Open(tinyPersist(t.TempDir()))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	if err := db.Apply(db.NewBatch().Add("same", 1, 2).Add("edge", 1, 2)); err != nil {
		t.Fatalf("apply: %v", err)
	}
	st := db.Stats()
	if st.Persist == nil {
		t.Fatal("no persist stats")
	}
	reason, gated := st.Persist.Gated["same"]
	if !gated || !strings.Contains(reason, "eqrel") {
		t.Fatalf("eqrel relation not gated: %+v", st.Persist.Gated)
	}
	if _, gated := st.Persist.Gated["edge"]; gated {
		t.Fatalf("plain input relation gated: %+v", st.Persist.Gated)
	}
	if n, _ := db.Size("out"); n != 1 {
		t.Fatalf("out size = %d, want 1", n)
	}
}

// TestPersistManifestRejectsForeignProgram pins a data directory to the
// program that created it.
func TestPersistManifestRejectsForeignProgram(t *testing.T) {
	dir := t.TempDir()
	db, err := MustParse(persistSrc).Open(WithPersistence(dir))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	db.Close()
	other := MustParse(`.decl r(x:number)` + "\n" + `.input r` + "\n" + `.output r`)
	if _, err := other.Open(WithPersistence(dir)); err == nil {
		t.Fatal("foreign program opened an existing data directory")
	} else if !strings.Contains(err.Error(), "different program") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestPersistDirLock ensures two databases cannot share a data directory.
func TestPersistDirLock(t *testing.T) {
	dir := t.TempDir()
	db, err := MustParse(persistSrc).Open(WithPersistence(dir))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	if _, err := MustParse(persistSrc).Open(WithPersistence(dir)); err == nil {
		t.Fatal("second database opened a locked data directory")
	}
}

// TestPersistTornWALTail corrupts the WAL's final record in place and
// checks recovery drops exactly that batch (whose Apply, in a real crash,
// never returned) while keeping all earlier ones.
func TestPersistTornWALTail(t *testing.T) {
	dir := t.TempDir()
	db, err := MustParse(persistSrc).Open(WithPersistenceConfig(PersistenceConfig{
		Dir:           dir,
		SnapshotEvery: -1, // keep everything in the WAL
	}))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := db.Apply(db.NewBatch().Add("edge", "a", "b")); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if err := db.Apply(db.NewBatch().Add("edge", "b", "c")); err != nil {
		t.Fatalf("apply: %v", err)
	}
	db.abandon()

	// Tear the last record.
	wals, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(wals) == 0 {
		t.Fatalf("no wal files: %v", err)
	}
	raw, err := os.ReadFile(wals[len(wals)-1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wals[len(wals)-1], raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := MustParse(persistSrc).Open(WithPersistence(dir))
	if err != nil {
		t.Fatalf("reopen with torn wal: %v", err)
	}
	defer db2.Close()
	rows, err := db2.Query("edge")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(rows) != 1 || rows[0][0] != "a" {
		t.Fatalf("after torn tail, edge = %v, want just [a b]", rows)
	}
}

// TestPersistLargerBatchesCrossSegments pushes enough tuples through tiny
// segment settings to force flushes and compactions, then validates against
// an in-memory reference.
func TestPersistLargerBatchesCrossSegments(t *testing.T) {
	src := `
.decl edge(x:number, y:number)
.decl reach(x:number, y:number)
.input edge
.output reach
reach(x, y) :- edge(x, y).
reach(x, z) :- reach(x, y), edge(y, z).
`
	dir := t.TempDir()
	db, err := MustParse(src).Open(WithPersistenceConfig(PersistenceConfig{
		Dir: dir, SnapshotEvery: 2, FlushKeys: 32, MaxSegments: 2,
	}))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	mem, _ := MustParse(src).Open()
	defer mem.Close()

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 6; i++ {
		bp, bm := db.NewBatch(), mem.NewBatch()
		for j := 0; j < 200; j++ {
			x, y := rng.Intn(60), rng.Intn(60)
			bp.Add("edge", x, y)
			bm.Add("edge", x, y)
		}
		if err := db.Apply(bp); err != nil {
			t.Fatalf("apply persistent %d: %v", i, err)
		}
		if err := mem.Apply(bm); err != nil {
			t.Fatalf("apply memory %d: %v", i, err)
		}
	}
	check := func(d *Database, tag string) {
		t.Helper()
		for _, rel := range []string{"edge", "reach"} {
			got, err := d.Query(rel)
			if err != nil {
				t.Fatalf("%s query %s: %v", tag, rel, err)
			}
			want, err := mem.Query(rel)
			if err != nil {
				t.Fatalf("memory query %s: %v", rel, err)
			}
			if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
				t.Fatalf("%s: %s differs (%d vs %d rows)", tag, rel, len(got), len(want))
			}
		}
	}
	check(db, "live")
	if st := db.Stats(); st.Persist.Flushes == 0 {
		t.Fatalf("no segment flushes despite FlushKeys=32: %+v", st.Persist)
	}
	db.Close()

	db2, err := MustParse(src).Open(WithPersistence(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	check(db2, "reopened")
}
