package sti

// This file exposes every experiment of the paper's evaluation (§5) as a
// testing.B benchmark. The cmd/benchmark tool runs the same measurements
// and prints them in the paper's table/figure layout; EXPERIMENTS.md records
// paper-vs-measured values.
//
//	BenchmarkFig15_*      interpreter & legacy vs compiled (Fig 15)
//	BenchmarkFig16_*      per-rule case study + hand-crafted fusion (Fig 16 / §5.2)
//	BenchmarkFig18_*      static instruction generation ablation (Fig 18)
//	BenchmarkFig19_*      super-instruction ablation (Fig 19)
//	BenchmarkReorder_*    static tuple reordering ablation (§5.5)
//	BenchmarkDispatch_*   lean-dispatch ablation (§5.5)
//	BenchmarkTable1_*     first-run synthesize+compile+execute (Table 1)

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sti/internal/bench"
	"sti/internal/interp"
)

// benchEachWorkload runs one measured engine configuration over every
// workload of the three suites.
func benchEachWorkload(b *testing.B, run func(b *testing.B, w *bench.Workload)) {
	for _, w := range bench.Suites(bench.Small) {
		w := w
		b.Run(strings.ReplaceAll(w.FullName(), "/", "_"), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run(b, w)
			}
		})
	}
}

func runInterp(b *testing.B, w *bench.Workload, cfg interp.Config) {
	b.Helper()
	if _, _, err := w.TimeInterp(cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig15_STI measures the full Soufflé Tree Interpreter.
func BenchmarkFig15_STI(b *testing.B) {
	benchEachWorkload(b, func(b *testing.B, w *bench.Workload) {
		runInterp(b, w, interp.DefaultConfig())
	})
}

// BenchmarkFig15_Compiled measures the closure-compiled baseline the
// slowdown ratios are computed against.
func BenchmarkFig15_Compiled(b *testing.B) {
	benchEachWorkload(b, func(b *testing.B, w *bench.Workload) {
		if _, _, err := w.TimeCompiled(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkFig15_Legacy measures the pre-STI legacy interpreter (§5.1).
func BenchmarkFig15_Legacy(b *testing.B) {
	benchEachWorkload(b, func(b *testing.B, w *bench.Workload) {
		runInterp(b, w, interp.LegacyConfig())
	})
}

// BenchmarkFig16_CaseStudy runs the per-rule profile comparison plus the
// hand-crafted super-instruction remedy on the gamess-like workload.
func BenchmarkFig16_CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig16(bench.Small, discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig18_DynamicAdapter measures the interpreter with static
// instruction generation disabled (every operation through the dynamic
// adapter with buffered iterators).
func BenchmarkFig18_DynamicAdapter(b *testing.B) {
	benchEachWorkload(b, func(b *testing.B, w *bench.Workload) {
		runInterp(b, w, interp.DynamicAdapterConfig())
	})
}

// BenchmarkFig19_NoSuperInstructions measures the interpreter with
// super-instructions disabled.
func BenchmarkFig19_NoSuperInstructions(b *testing.B) {
	cfg := interp.DefaultConfig()
	cfg.SuperInstructions = false
	benchEachWorkload(b, func(b *testing.B, w *bench.Workload) {
		runInterp(b, w, cfg)
	})
}

// BenchmarkReorder_Runtime measures the interpreter with static tuple
// reordering disabled (decoding iterators at runtime, §5.5).
func BenchmarkReorder_Runtime(b *testing.B) {
	cfg := interp.DefaultConfig()
	cfg.StaticReordering = false
	benchEachWorkload(b, func(b *testing.B, w *bench.Workload) {
		runInterp(b, w, cfg)
	})
}

// BenchmarkDispatch_Heavyweight measures the interpreter with the lean
// dispatch path disabled (the §4.3 baseline).
func BenchmarkDispatch_Heavyweight(b *testing.B) {
	cfg := interp.DefaultConfig()
	cfg.LeanDispatch = false
	benchEachWorkload(b, func(b *testing.B, w *bench.Workload) {
		runInterp(b, w, cfg)
	})
}

// BenchmarkTable1_FirstRun measures the true synthesizer pipeline (emit Go,
// go build, execute) on one representative workload per suite. The full
// 20-workload sweep is `cmd/benchmark -table 1`.
func BenchmarkTable1_FirstRun(b *testing.B) {
	root := findModuleRoot(b)
	picks := map[string]bool{"VPC/acct-web": true, "DDisasm/sjeng": true, "DOOP/antlr": true}
	for _, w := range bench.Table1Suite() {
		if !picks[w.FullName()] {
			continue
		}
		w := w
		b.Run(strings.ReplaceAll(w.FullName(), "/", "_"), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.Table1One(w, root, "bench_t1"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func findModuleRoot(b *testing.B) string {
	b.Helper()
	dir, err := os.Getwd()
	if err != nil {
		b.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			b.Fatal("go.mod not found")
		}
		dir = parent
	}
}

// discard is an io.Writer black hole for benchmarked report generation.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
