package sti

import (
	"fmt"
	"strings"

	"sti/internal/codegen"
	"sti/internal/compile"
	"sti/internal/interp"
	"sti/internal/obsv"
	"sti/internal/ram"
	"sti/internal/symtab"
	"sti/internal/tuple"
)

// Backend selects the execution engine.
type Backend int

// Available backends.
const (
	// Interpreter is the Soufflé Tree Interpreter (the paper's system).
	Interpreter Backend = iota
	// Compiled is the closure-compiled engine (the "synthesized" baseline).
	Compiled
)

// InterpreterConfig exposes the interpreter's optimization switches (see
// the paper's §4 and this repo's DESIGN.md).
type InterpreterConfig = interp.Config

// Profile is the interpreter's profiling report.
type Profile = interp.Profile

// Option adjusts a run.
type Option func(*runOptions)

type runOptions struct {
	backend    Backend
	cfg        InterpreterConfig
	cfgSet     bool
	profile    bool
	provenance bool
	workers    int
	shards     int
	// obs is the request-scoped observability hub, built by
	// WithObservability (observe.go). Open-only; one-shot runs ignore it.
	obs *obsv.Observer
	// persist selects the durable tier and data directory, built by
	// WithPersistence (persist.go). Open-only; one-shot runs ignore it.
	persist *PersistenceConfig
}

// WithBackend selects the execution engine (default Interpreter).
func WithBackend(b Backend) Option {
	return func(o *runOptions) { o.backend = b }
}

// WithInterpreterConfig overrides the interpreter configuration (default:
// all optimizations enabled).
func WithInterpreterConfig(cfg InterpreterConfig) Option {
	return func(o *runOptions) { o.cfg = cfg; o.cfgSet = true }
}

// WithLegacyInterpreter selects the pre-STI legacy interpreter (§5.1).
func WithLegacyInterpreter() Option {
	return func(o *runOptions) { o.cfg = interp.LegacyConfig(); o.cfgSet = true }
}

// WithProfiling enables the built-in profiler (interpreter backend only).
func WithProfiling() Option {
	return func(o *runOptions) { o.profile = true }
}

// WithWorkers sets the interpreter's parallelism degree: the outermost scan
// of each rule is partitioned across n workers with thread-local contexts.
func WithWorkers(n int) Option {
	return func(o *runOptions) { o.workers = n }
}

// WithShards hash-partitions every shardable relation into n shards on its
// analysis-derived join-key column, so the interpreter runs shard-parallel
// semi-naive fixpoints with delta exchange at the scan barriers
// (interpreter backend only). Workers is raised to at least n so worker i
// evaluates shard i. For a resident Database, sharding accelerates Open's
// initial evaluation; Apply always recomputes (the incremental entry points
// run unsharded), recorded in Stats().FallbackReason.
func WithShards(n int) Option {
	return func(o *runOptions) { o.shards = n }
}

// Result holds the relations of a completed run.
type Result struct {
	prog    *Program
	tuples  map[string][]tuple.Tuple
	profile *Profile
	eng     *interp.Engine // retained for Explain (provenance runs only)
}

// Run executes the program on the given input (nil for none).
func (p *Program) Run(in *Input, opts ...Option) (*Result, error) {
	var o runOptions
	if !o.cfgSet {
		o.cfg = interp.DefaultConfig()
	}
	for _, opt := range opts {
		opt(&o)
	}
	if in != nil && in.err != nil {
		return nil, in.err
	}
	io := interp.NewMemIO()
	if in != nil {
		io = in.mem
	}

	res := &Result{prog: p, tuples: map[string][]tuple.Tuple{}}
	switch o.backend {
	case Compiled:
		m := compile.New(p.ram, p.st)
		if err := m.Run(io); err != nil {
			return nil, err
		}
		for _, rd := range p.ram.Relations {
			if rd.Aux {
				continue
			}
			ts, err := m.Tuples(rd.Name)
			if err != nil {
				return nil, err
			}
			res.tuples[rd.Name] = ts
		}
	default:
		cfg := o.cfg
		cfg.Profile = cfg.Profile || o.profile
		cfg.Provenance = cfg.Provenance || o.provenance
		if o.workers > 0 {
			cfg.Workers = o.workers
		}
		if o.shards > 0 {
			cfg.Shards = o.shards
		}
		eng := interp.New(p.ram, p.st, cfg)
		if err := eng.Run(io); err != nil {
			return nil, err
		}
		if cfg.Provenance {
			res.eng = eng
		}
		for _, rd := range p.ram.Relations {
			if rd.Aux {
				continue
			}
			ts, err := eng.Tuples(rd.Name)
			if err != nil {
				return nil, err
			}
			res.tuples[rd.Name] = ts
		}
		res.profile = eng.Profile()
	}
	return res, nil
}

// RunDir executes the program reading <rel>.facts files from inDir and
// writing <rel>.csv files to outDir (the Soufflé file convention), using
// the interpreter backend.
func (p *Program) RunDir(inDir, outDir string, opts ...Option) error {
	var o runOptions
	o.cfg = interp.DefaultConfig()
	for _, opt := range opts {
		opt(&o)
	}
	io := &interp.DirIO{InputDir: inDir, OutputDir: outDir, Symbols: p.st}
	if o.backend == Compiled {
		return compile.New(p.ram, p.st).Run(io)
	}
	cfg := o.cfg
	cfg.Profile = cfg.Profile || o.profile
	if o.workers > 0 {
		cfg.Workers = o.workers
	}
	if o.shards > 0 {
		cfg.Shards = o.shards
	}
	return interp.New(p.ram, p.st, cfg).Run(io)
}

// Size reports the number of tuples in a relation after the run.
func (r *Result) Size(name string) int { return len(r.tuples[name]) }

// Contains reports whether the relation holds the given tuple (values
// converted like Input.Add).
func (r *Result) Contains(name string, values ...any) bool {
	decl, err := r.prog.decl(name)
	if err != nil || len(values) != decl.Arity {
		return false
	}
	probe := make(tuple.Tuple, decl.Arity)
	for i, v := range values {
		w, err := r.prog.encode(decl.Types[i], v)
		if err != nil {
			return false
		}
		probe[i] = w
	}
	for _, t := range r.tuples[name] {
		if tuple.Equal(t, probe) {
			return true
		}
	}
	return false
}

// Rows returns a relation's tuples decoded to Go values (int32, uint32,
// float32, or string per attribute type).
func (r *Result) Rows(name string) [][]any {
	decl, err := r.prog.decl(name)
	if err != nil {
		return nil
	}
	out := make([][]any, 0, len(r.tuples[name]))
	for _, t := range r.tuples[name] {
		row := make([]any, len(t))
		for i, w := range t {
			row[i] = r.prog.decode(decl.Types[i], w)
		}
		out = append(out, row)
	}
	return out
}

// Profile returns the interpreter's profiling report (nil unless
// WithProfiling was used with the interpreter backend).
func (r *Result) Profile() *Profile { return r.profile }

// codegenEmit indirection keeps sti.go free of the codegen import cycle
// concerns and makes the dependency explicit.
func codegenEmit(rp *ram.Program, st *symtab.Table) ([]byte, error) {
	return codegen.Emit(rp, st)
}

// WithProvenance records every tuple's first derivation so the result can
// explain how tuples were derived (interpreter backend only; implies the
// dynamic-adapter configuration).
func WithProvenance() Option {
	return func(o *runOptions) { o.provenance = true }
}

// ProofNode is one node of a derivation tree with decoded values. Leaves
// (input facts) have an empty Rule.
type ProofNode struct {
	Relation string
	Values   []any
	Rule     string
	Premises []*ProofNode
}

// String renders the proof as an indented tree.
func (p *ProofNode) String() string {
	var b strings.Builder
	p.render(&b, 0)
	return b.String()
}

func (p *ProofNode) render(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%s%v", p.Relation, p.Values)
	if p.Rule == "" {
		b.WriteString("  [fact]")
	} else {
		fmt.Fprintf(b, "  [%s]", p.Rule)
	}
	b.WriteByte('\n')
	for _, prem := range p.Premises {
		prem.render(b, depth+1)
	}
}

// Explain reconstructs the derivation of a tuple (values converted like
// Input.Add). The run must have used WithProvenance.
func (r *Result) Explain(name string, values ...any) (*ProofNode, error) {
	if r.eng == nil {
		return nil, fmt.Errorf("sti: run without WithProvenance cannot explain")
	}
	decl, err := r.prog.decl(name)
	if err != nil {
		return nil, err
	}
	if len(values) != decl.Arity {
		return nil, fmt.Errorf("sti: relation %s has arity %d, got %d values", name, decl.Arity, len(values))
	}
	t := make(tuple.Tuple, decl.Arity)
	for i, v := range values {
		w, err := r.prog.encode(decl.Types[i], v)
		if err != nil {
			return nil, err
		}
		t[i] = w
	}
	proof, err := r.eng.Explain(name, t)
	if err != nil {
		return nil, err
	}
	return r.decodeProof(proof), nil
}

func (r *Result) decodeProof(p *interp.Proof) *ProofNode {
	out := &ProofNode{Relation: p.Relation, Rule: p.Rule}
	if decl, err := r.prog.decl(p.Relation); err == nil {
		for i, w := range p.Tuple {
			out.Values = append(out.Values, r.prog.decode(decl.Types[i], w))
		}
	}
	for _, prem := range p.Premises {
		out.Premises = append(out.Premises, r.decodeProof(prem))
	}
	return out
}
