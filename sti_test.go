package sti

import (
	"strings"
	"testing"
)

const tcSource = `
.decl edge(x:number, y:number)
.decl path(x:number, y:number)
.input edge
.output path
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
`

func TestParseErrors(t *testing.T) {
	if _, err := Parse("nonsense("); err == nil {
		t.Fatal("syntax error not reported")
	}
	if _, err := Parse(".decl a(x:number)\na(x) :- b(x)."); err == nil {
		t.Fatal("semantic error not reported")
	} else if !strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("error = %v", err)
	}
}

func TestQuickstartFlow(t *testing.T) {
	prog := MustParse(tcSource)
	in := prog.NewInput()
	in.Add("edge", 1, 2).Add("edge", 2, 3).Add("edge", 3, 4)
	res, err := prog.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size("path") != 6 {
		t.Fatalf("path size = %d", res.Size("path"))
	}
	if !res.Contains("path", 1, 4) || res.Contains("path", 4, 1) {
		t.Fatal("contents wrong")
	}
	rows := res.Rows("path")
	if len(rows) != 6 {
		t.Fatalf("rows = %v", rows)
	}
	if _, ok := rows[0][0].(int32); !ok {
		t.Fatalf("row value type %T", rows[0][0])
	}
}

func TestBackendsAgree(t *testing.T) {
	prog := MustParse(tcSource)
	mk := func() *Input {
		in := prog.NewInput()
		for i := 0; i < 20; i++ {
			in.Add("edge", i, i+1)
			in.Add("edge", i+1, i%3)
		}
		return in
	}
	a, err := prog.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := prog.Run(mk(), WithBackend(Compiled))
	if err != nil {
		t.Fatal(err)
	}
	c, err := prog.Run(mk(), WithLegacyInterpreter())
	if err != nil {
		t.Fatal(err)
	}
	if a.Size("path") != b.Size("path") || a.Size("path") != c.Size("path") {
		t.Fatalf("backends disagree: %d %d %d", a.Size("path"), b.Size("path"), c.Size("path"))
	}
}

func TestInputValidation(t *testing.T) {
	prog := MustParse(tcSource)
	in := prog.NewInput()
	in.Add("edge", 1) // arity mismatch
	if in.Err() == nil {
		t.Fatal("arity error not caught")
	}
	if _, err := prog.Run(in); err == nil {
		t.Fatal("Run accepted broken input")
	}
	in2 := prog.NewInput()
	in2.Add("nosuch", 1, 2)
	if in2.Err() == nil {
		t.Fatal("unknown relation not caught")
	}
	in3 := prog.NewInput()
	in3.Add("edge", "a", 2)
	if in3.Err() == nil {
		t.Fatal("type error not caught")
	}
}

func TestTypedAttributes(t *testing.T) {
	prog := MustParse(`
.decl m(s:symbol, n:number, u:unsigned, f:float)
.decl out(s:symbol, n:number, u:unsigned, f:float)
.input m
.output out
out(s, n, u, f) :- m(s, n, u, f).
`)
	in := prog.NewInput()
	in.Add("m", "hello", -5, uint32(7), 2.5)
	res, err := prog.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows("out")
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].(string) != "hello" || rows[0][1].(int32) != -5 ||
		rows[0][2].(uint32) != 7 || rows[0][3].(float32) != 2.5 {
		t.Fatalf("row = %v", rows[0])
	}
}

func TestProfilingOption(t *testing.T) {
	prog := MustParse(tcSource)
	in := prog.NewInput()
	for i := 0; i < 10; i++ {
		in.Add("edge", i, i+1)
	}
	res, err := prog.Run(in, WithProfiling())
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile() == nil || res.Profile().TotalDispatches == 0 {
		t.Fatal("no profile collected")
	}
	// Compiled backend has no profiler.
	res2, err := prog.Run(in, WithBackend(Compiled))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Profile() != nil {
		t.Fatal("compiled backend returned a profile")
	}
}

func TestRAMAndEmit(t *testing.T) {
	prog := MustParse(tcSource)
	if !strings.Contains(prog.RAM(), "LOOP") {
		t.Fatal("RAM rendering missing fixpoint loop")
	}
	src, err := prog.EmitGo()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "package main") {
		t.Fatal("emitted source malformed")
	}
	rels := prog.Relations()
	if len(rels) != 2 || rels[0] != "edge" || rels[1] != "path" {
		t.Fatalf("relations = %v", rels)
	}
}

func TestRunDir(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir+"/edge.facts", "1\t2\n2\t3\n")
	prog := MustParse(tcSource)
	if err := prog.RunDir(dir, dir); err != nil {
		t.Fatal(err)
	}
	data := readFile(t, dir+"/path.csv")
	if data != "1\t2\n1\t3\n2\t3\n" {
		t.Fatalf("path.csv = %q", data)
	}
	// Compiled backend through the same path.
	if err := prog.RunDir(dir, dir, WithBackend(Compiled)); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeAndWorkers(t *testing.T) {
	// The negation keeps the program non-deletable: choice conversion is
	// suppressed for counting targets, and this test wants the choice.
	srcOpt := `
.decl e(x:number, y:number)
.decl node(x:number)
.decl skip(x:number)
.decl out(x:number)
.input e
.input node
.input skip
out(x) :- node(x), e(x, y), y > 2 + 3, !skip(x).
`
	plain := MustParse(srcOpt)
	opt := MustParse(srcOpt).Optimize()
	if !strings.Contains(opt.RAM(), "CHOICE") {
		t.Fatalf("Optimize did not introduce a choice:\n%s", opt.RAM())
	}
	mk := func(p *Program) *Input {
		in := p.NewInput()
		for i := 0; i < 30; i++ {
			in.Add("e", i, i%9)
			in.Add("node", i)
		}
		return in
	}
	a, err := plain.Run(mk(plain))
	if err != nil {
		t.Fatal(err)
	}
	b, err := opt.Run(mk(opt))
	if err != nil {
		t.Fatal(err)
	}
	c, err := opt.Run(mk(opt), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Size("out") != b.Size("out") || a.Size("out") != c.Size("out") {
		t.Fatalf("sizes diverge: %d %d %d", a.Size("out"), b.Size("out"), c.Size("out"))
	}
}

func TestExplainViaFacade(t *testing.T) {
	prog := MustParse(tcSource)
	in := prog.NewInput()
	in.Add("edge", 1, 2).Add("edge", 2, 3)
	res, err := prog.Run(in, WithProvenance())
	if err != nil {
		t.Fatal(err)
	}
	proof, err := res.Explain("path", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if proof.Rule == "" || len(proof.Premises) != 2 {
		t.Fatalf("proof:\n%s", proof)
	}
	if !strings.Contains(proof.String(), "[fact]") {
		t.Fatalf("proof rendering:\n%s", proof)
	}
	// Without provenance, Explain refuses.
	res2, err := prog.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res2.Explain("path", 1, 3); err == nil {
		t.Fatal("Explain without provenance succeeded")
	}
}
