module sti

go 1.22
