package sti

import (
	"errors"
	"fmt"
	"sync/atomic"

	"sti/internal/eio"
	"sti/internal/interp"
	"sti/internal/obsv"
	"sti/internal/ram"
	"sti/internal/relation"
	"sti/internal/tuple"
)

// Database is a resident instance of a program: the materialized IDB stays
// loaded between calls, fact batches are absorbed with Apply, and reads are
// served straight from the resident indexes. One goroutine may Apply at a
// time (writers serialize on an internal lock); any number of goroutines
// may Query/Scan concurrently — readers share epoch-guarded snapshots and
// never block each other, and never observe a half-applied batch.
//
// Insert-only batches of an insert-monotone program (no negation, no
// aggregates) re-evaluate incrementally via the program's delta-restart
// update entry point. Batches with deletions run incrementally too when the
// program is deletable (support counting for non-recursive strata,
// overdelete/rederive for recursive ones) and every deletion targets an
// input relation; otherwise the batch falls back to a full recomputation on
// the accumulated fact set, and Stats records why.
type Database struct {
	prog  *Program
	eng   *interp.Engine
	guard relation.EpochGuard

	// facts accumulates every fact applied so far, by relation, for the
	// full-recompute fallback. Mutated only under the writer side.
	facts map[string][]tuple.Tuple

	closed bool
	// broken marks a database whose engine hit a runtime error mid-apply
	// and may hold a partial fixpoint; every later operation fails.
	broken error

	applies        uint64
	incremental    uint64
	recomputes     uint64
	fallbackReason string // why the most recent apply fell back
	// fallbackCounts tallies recompute fallbacks by reason, feeding the
	// sti_apply_fallbacks_total exposition series and DBStats.
	fallbackCounts map[string]uint64

	// obs is the request-scoped observability hub (nil unless opened
	// WithObservability); traced caches whether the engine collects trace
	// spans, so request-ID strings are only built when a span will carry them.
	obs    *obsv.Observer
	traced bool

	// stClosed/stBroken/phaseV/epochV mirror closed/broken/engine-phase and
	// the published epoch as atomics so health probes (Ready, Phase) and
	// slow-read log records never block behind an in-flight Apply. The
	// locked fields stay authoritative for request paths.
	stClosed atomic.Bool
	stBroken atomic.Bool
	phaseV   atomic.Int32
	epochV   atomic.Uint64

	// readProf is the lock-free engine profile for slow read records
	// (observe.go); allocated once so the read hot path stays allocation-free.
	readProf *readProfile

	// shards is the shard count the database was opened with (0 when
	// unsharded). A sharded database always absorbs batches through the
	// recompute path: the update/delete entry points are generated for
	// serial unsharded execution, while recomputation reuses the
	// shard-parallel main program.
	shards int

	// pst is the durable tier (nil unless opened WithPersistence): the
	// segment store behind eligible input relations plus the WAL/snapshot
	// protocol that makes Apply batches survive restarts (persist.go).
	pst *persistence
}

// Open evaluates the program to its initial fixpoint (program facts only;
// EDB arrives through Apply) and returns a resident database. The
// interpreter backend is required, and provenance is not supported.
//
// With WithPersistence, eligible input relations are built on the durable
// tier, the data directory's snapshot + WAL are replayed first (so a
// restarted database resumes at its last applied batch, even after a
// crash), and the recovered state is checkpointed before Open returns.
func (p *Program) Open(opts ...Option) (*Database, error) {
	var o runOptions
	o.cfg = interp.DefaultConfig()
	for _, opt := range opts {
		opt(&o)
	}
	if o.backend == Compiled {
		return nil, errors.New("sti: resident databases require the interpreter backend")
	}
	if o.provenance || o.cfg.Provenance {
		return nil, errors.New("sti: resident databases do not support provenance")
	}
	cfg := o.cfg
	cfg.Profile = false
	cfg.Provenance = false
	if o.workers > 0 {
		cfg.Workers = o.workers
	}
	if o.shards > 0 {
		cfg.Shards = o.shards
	}
	var pst *persistence
	if o.persist != nil {
		var err error
		if pst, err = openPersistence(p, *o.persist); err != nil {
			return nil, err
		}
		cfg.Tier = dbTier{p: pst}
	}
	eng := interp.New(p.ram, p.st, cfg)
	if err := eng.Load(interp.NewMemIO()); err != nil {
		if pst != nil {
			pst.st.Close()
		}
		return nil, err
	}
	db := &Database{
		prog:           p,
		eng:            eng,
		shards:         cfg.Shards,
		facts:          map[string][]tuple.Tuple{},
		fallbackCounts: map[string]uint64{},
		obs:            o.obs,
		traced:         eng.Telemetry().Tracing(),
		pst:            pst,
	}
	if pst != nil {
		if err := pst.recover(db); err != nil {
			pst.abandon()
			return nil, err
		}
	} else if err := eng.Eval(); err != nil {
		return nil, err
	}
	db.phaseV.Store(int32(eng.Phase()))
	db.epochV.Store(db.guard.Epoch())
	db.readProf = &readProfile{db: db}
	if db.obs != nil {
		db.registerObsvMetrics()
	}
	return db, nil
}

// Incremental reports whether the program supports incremental insert-only
// batches (it is insert-monotone, so a delta-restart update program was
// emitted at translation time).
func (db *Database) Incremental() bool { return db.eng.Incremental() }

// Deletable reports whether the program supports incremental deletion
// batches (a counting/DRed delete program was emitted at translation time).
func (db *Database) Deletable() bool { return db.eng.Deletable() }

// Epoch returns the number of completed Apply calls (including Close).
func (db *Database) Epoch() uint64 { return db.guard.Epoch() }

// Close marks the database closed; subsequent operations fail. It waits
// for in-flight snapshots and writers. A persistent database checkpoints
// (final snapshot, synced WAL) and releases its data directory, so the next
// Open recovers from a clean generation with nothing to replay.
func (db *Database) Close() error {
	db.guard.BeginWrite()
	defer db.guard.EndWrite()
	if db.closed {
		return nil
	}
	db.closed = true
	db.stClosed.Store(true)
	if db.pst != nil {
		if db.broken != nil {
			// The engine state is undefined; keep the last good snapshot and
			// the WAL (which already holds every applied batch) for recovery.
			db.pst.abandon()
			return nil
		}
		return db.pst.shutdown(db)
	}
	return nil
}

// abandon closes the database without checkpointing or flushing, leaving
// the data directory exactly as a process crash would: last snapshot plus
// the WAL records whose Apply returned. Test hook for crash recovery.
func (db *Database) abandon() {
	db.guard.BeginWrite()
	defer db.guard.EndWrite()
	db.closed = true
	db.stClosed.Store(true)
	if db.pst != nil {
		db.pst.abandon()
	}
}

// fail marks the database broken — the engine hit a runtime error mid-apply
// and may hold a partial fixpoint — and passes the original error through.
func (db *Database) fail(err error) error {
	db.broken = fmt.Errorf("sti: apply failed, database state undefined: %w", err)
	db.stBroken.Store(true)
	return err
}

var errClosed = errors.New("sti: database is closed")

// --- batches ---

// Batch stages fact insertions and deletions for one Apply call. Values
// convert like Input.Add. Within a batch, deletions apply after
// insertions. Deleting a fact that was never applied is a no-op; only EDB
// facts added through Apply can be deleted (program facts and derived
// tuples cannot — a deletion naming a non-input relation forces the
// recompute fallback).
type Batch struct {
	db   *Database
	ins  []batchFact
	dels []batchFact
	err  error

	// pos is the source position attributed to text-staging errors, set
	// with At. Line protocols use it so parse failures surface as typed
	// *eio.RowError values with fact-file-style path:line:col positions.
	pos struct {
		path    string
		line    int
		colBase int
	}
}

type batchFact struct {
	rel string
	t   tuple.Tuple
}

// NewBatch returns an empty batch for the database.
func (db *Database) NewBatch() *Batch { return &Batch{db: db} }

// Add stages one fact insertion.
func (b *Batch) Add(name string, values ...any) *Batch {
	if f, ok := b.encode(name, values); ok {
		b.ins = append(b.ins, f)
	}
	return b
}

// Delete stages one fact deletion.
func (b *Batch) Delete(name string, values ...any) *Batch {
	if f, ok := b.encode(name, values); ok {
		b.dels = append(b.dels, f)
	}
	return b
}

// At sets the source position attributed to parse errors of subsequently
// staged text facts: path and 1-based line in fact-file style, plus the
// 1-based byte column where the first field starts on that line (line
// protocols carry a "+rel<TAB>" prefix before the fields). With a position
// set, AddText/DeleteText failures are typed *eio.RowError values rendering
// as path:line:col; without one they are plain errors.
func (b *Batch) At(path string, line, colBase int) *Batch {
	b.pos.path = path
	b.pos.line = line
	b.pos.colBase = colBase
	return b
}

// AddText stages one insertion from tab-separated text fields, parsed by
// attribute type with the fact-file conventions (quoted symbols allowed).
func (b *Batch) AddText(name string, fields []string) *Batch {
	if f, ok := b.encodeText(name, fields); ok {
		b.ins = append(b.ins, f)
	}
	return b
}

// DeleteText stages one deletion from tab-separated text fields.
func (b *Batch) DeleteText(name string, fields []string) *Batch {
	if f, ok := b.encodeText(name, fields); ok {
		b.dels = append(b.dels, f)
	}
	return b
}

// Err returns the first conversion error, if any (also returned by Apply).
func (b *Batch) Err() error { return b.err }

// Len reports the number of staged insertions and deletions.
func (b *Batch) Len() int { return len(b.ins) + len(b.dels) }

func (b *Batch) encode(name string, values []any) (batchFact, bool) {
	if b.err != nil {
		return batchFact{}, false
	}
	decl, err := b.db.prog.decl(name)
	if err != nil {
		b.err = err
		return batchFact{}, false
	}
	if len(values) != decl.Arity {
		b.err = fmt.Errorf("sti: relation %s has arity %d, got %d values", name, decl.Arity, len(values))
		return batchFact{}, false
	}
	t := make(tuple.Tuple, decl.Arity)
	for i, v := range values {
		w, err := b.db.prog.encode(decl.Types[i], v)
		if err != nil {
			b.err = fmt.Errorf("sti: %s argument %d: %v", name, i, err)
			return batchFact{}, false
		}
		t[i] = w
	}
	return batchFact{rel: name, t: t}, true
}

func (b *Batch) encodeText(name string, fields []string) (batchFact, bool) {
	if b.err != nil {
		return batchFact{}, false
	}
	decl, err := b.db.prog.decl(name)
	if err != nil {
		b.err = b.textErr(name, 0, err)
		return batchFact{}, false
	}
	if len(fields) != decl.Arity {
		b.err = b.textErr(name, 0, fmt.Errorf("%d fields, want %d", len(fields), decl.Arity))
		return batchFact{}, false
	}
	t := make(tuple.Tuple, decl.Arity)
	col := b.pos.colBase
	for i, f := range fields {
		v, err := eio.ParseField(f, decl.Types[i], b.db.prog.st)
		if err != nil {
			b.err = b.textErr(name, col, err)
			return batchFact{}, false
		}
		t[i] = v
		col += len(f) + 1
	}
	return batchFact{rel: name, t: t}, true
}

// textErr wraps a text-staging failure. With a position set through At the
// result is a typed *eio.RowError (col 0 marks a whole-row problem);
// otherwise a plain error.
func (b *Batch) textErr(name string, col int, err error) error {
	if b.pos.path != "" {
		return &eio.RowError{Path: b.pos.path, Line: b.pos.line, Col: col, Rel: name, Err: err}
	}
	return fmt.Errorf("sti: relation %s: %v", name, err)
}

// Apply absorbs a batch and re-evaluates the database to the new fixpoint.
// Insert-only batches of incremental programs run the delta-restart update
// program: each stratum is re-entered seeded only with the fresh tuples.
// Batches with deletions run the update program for the insertions and then
// the delete program (counting/DRed) for the retractions, provided the
// program is deletable and every deletion targets an input relation.
// Otherwise the engine recomputes from the accumulated facts, recording the
// reason in Stats. Apply blocks until all outstanding snapshots are
// released, and bumps the epoch.
func (db *Database) Apply(b *Batch) error {
	req := db.obs.Start(obsv.OpApply, "")
	if b.err != nil {
		req.Finish(obsv.OutError, nil)
		return b.err
	}
	db.guard.BeginWrite()
	defer db.guard.EndWrite()
	if db.traced && req.Active() {
		// Tag the engine so every span closed during this batch (update,
		// delete, recompute fixpoints) joins the trace under this request.
		// reqTag is only read from the writer goroutine, which we are.
		db.eng.SetRequest(req.ID())
		defer db.eng.SetRequest("")
	}
	out, err := db.applyLocked(b)
	if err == nil && db.pst != nil {
		db.pst.sinceSnap++
		if db.pst.cfg.SnapshotEvery > 0 && db.pst.sinceSnap >= db.pst.cfg.SnapshotEvery {
			// Periodic checkpoint bounds the WAL replay a restart pays. A
			// checkpoint failure breaks the database: the WAL rotation may
			// be half-done, and durability can no longer be promised.
			if cerr := db.pst.checkpoint(db); cerr != nil {
				out, err = obsv.OutError, db.fail(cerr)
			}
		}
	}
	db.phaseV.Store(int32(db.eng.Phase()))
	// The deferred EndWrite publishes guard.Epoch()+1 whether the batch
	// succeeded or not; mirror it now so the slow-request record below and
	// concurrent probes report the epoch this Apply produced.
	db.epochV.Store(db.guard.Epoch() + 1)
	// Finish while the writer lock is held: the slow-request profile
	// (Database.SlowAttrs) reads lock-guarded counters.
	req.Finish(out, db)
	return err
}

// applyLocked is the body of Apply, run under the writer lock. It returns
// the outcome classification for the request's latency series alongside the
// user-visible error.
func (db *Database) applyLocked(b *Batch) (obsv.Outcome, error) {
	if db.closed {
		return obsv.OutError, errClosed
	}
	if db.broken != nil {
		return obsv.OutError, db.broken
	}
	if db.pst != nil {
		// Write-ahead: the batch is durable before any state changes, so a
		// crash at any later point replays it on restart. A WAL failure
		// breaks the database — continuing would silently drop durability.
		if err := db.pst.logBatch(db, b); err != nil {
			return obsv.OutError, db.fail(err)
		}
	}
	// Record the batch into the accumulated fact set.
	for _, f := range b.ins {
		db.facts[f.rel] = append(db.facts[f.rel], f.t)
	}
	for _, f := range b.dels {
		ts := db.facts[f.rel]
		kept := ts[:0]
		for _, t := range ts {
			if !tuple.Equal(t, f.t) {
				kept = append(kept, t)
			}
		}
		db.facts[f.rel] = kept
	}
	db.applies++
	if db.shards > 0 {
		// The update/delete entry points are generated for serial
		// unsharded evaluation; a sharded database keeps its speed on the
		// recompute path instead, which reuses the shard-parallel main
		// program. Stats records the trade.
		return db.fallback(fallbackSharded)
	}
	if len(b.dels) == 0 {
		if db.eng.Incremental() {
			return db.applyIncremental(b)
		}
		return db.fallback(db.eng.NoUpdateReason())
	}
	if !db.eng.Deletable() {
		return db.fallback(db.eng.NoDeleteReason())
	}
	for _, f := range b.dels {
		decl, err := db.prog.decl(f.rel)
		if err != nil {
			return obsv.OutError, db.fail(err)
		}
		if !decl.Input {
			return db.fallback(fmt.Sprintf("batch deletes tuples of %q, which is not an input relation", f.rel))
		}
	}
	return db.applyDelta(b)
}

// fallbackSharded is the FallbackReason recorded by every Apply on a
// sharded database.
const fallbackSharded = "sharded database: incremental entry points run unsharded, batches recompute with the shard-parallel main program"

// fallback runs a full recomputation and records why the incremental path
// was lost.
func (db *Database) fallback(reason string) (obsv.Outcome, error) {
	if reason == "" {
		reason = "program has no incremental entry point"
	}
	db.fallbackReason = reason
	if db.fallbackCounts == nil {
		db.fallbackCounts = map[string]uint64{}
	}
	db.fallbackCounts[reason]++
	if err := db.recompute(); err != nil {
		return obsv.OutError, err
	}
	return obsv.OutFallback, nil
}

// groupByRel splits batch facts per relation, preserving batch order both
// across relations (first appearance) and within each relation.
func groupByRel(facts []batchFact) (order []string, grouped map[string][]tuple.Tuple) {
	grouped = map[string][]tuple.Tuple{}
	for _, f := range facts {
		if _, seen := grouped[f.rel]; !seen {
			order = append(order, f.rel)
		}
		grouped[f.rel] = append(grouped[f.rel], f.t)
	}
	return order, grouped
}

func (db *Database) applyIncremental(b *Batch) (obsv.Outcome, error) {
	if err := db.insertAndUpdate(b.ins); err != nil {
		return obsv.OutError, err
	}
	db.incremental++
	return obsv.OutIncremental, nil
}

// insertAndUpdate stages fresh tuples into the base relations and their
// recent_R freshness trackers, then runs the delta-restart update program.
// A run with no insertions is a no-op.
func (db *Database) insertAndUpdate(ins []batchFact) error {
	if len(ins) == 0 {
		return nil
	}
	order, staged := groupByRel(ins)
	for _, name := range order {
		if _, err := db.eng.InsertFacts(name, staged[name]); err != nil {
			return db.fail(err)
		}
	}
	if err := db.eng.EvalUpdate(); err != nil {
		return db.fail(err)
	}
	return nil
}

// applyDelta absorbs a batch with deletions incrementally: the insertions
// run through the update program first (deletions apply after insertions
// within a batch), then the staged retractions run through the delete
// program, which computes exactly the derived tuples losing their last
// support and removes them together with the retracted facts.
func (db *Database) applyDelta(b *Batch) (obsv.Outcome, error) {
	if err := db.insertAndUpdate(b.ins); err != nil {
		return obsv.OutError, err
	}
	order, staged := groupByRel(b.dels)
	total := 0
	for _, name := range order {
		n, err := db.eng.DeleteFacts(name, staged[name])
		if err != nil {
			return obsv.OutError, db.fail(err)
		}
		total += n
	}
	// Deleting facts that were never present stages nothing; the delete
	// program only runs when at least one retraction took hold.
	if total > 0 {
		if err := db.eng.EvalDelete(); err != nil {
			return obsv.OutError, db.fail(err)
		}
	}
	db.incremental++
	return obsv.OutIncrementalDelete, nil
}

// recompute rebuilds the fixpoint from scratch: clear everything, replay
// the accumulated facts, evaluate. Relation and index structures are
// reused across recomputations.
func (db *Database) recompute() error {
	db.eng.Reset()
	for _, rd := range db.prog.ram.Relations {
		if rd.Aux {
			continue
		}
		if ts := db.facts[rd.Name]; len(ts) > 0 {
			if _, err := db.eng.InsertFacts(rd.Name, ts); err != nil {
				return db.fail(err)
			}
		}
	}
	if err := db.eng.Eval(); err != nil {
		return db.fail(err)
	}
	db.eng.ClearRecents()
	db.recomputes++
	return nil
}

// --- reads ---

// Snapshot pins a consistent view of the database. Queries on the snapshot
// all observe the same epoch; Apply calls block until it is released, so
// snapshots should be short-lived. Use one snapshot per goroutine.
func (db *Database) Snapshot() *Snapshot {
	return &Snapshot{db: db, h: db.guard.Acquire()}
}

// Snapshot is a pinned read view of a Database. It is not safe for
// concurrent use by multiple goroutines; each reader acquires its own.
type Snapshot struct {
	db *Database
	h  *relation.SnapshotHandle
	// rid tags query/scan trace spans with a request ID. Set only by the
	// instrumented one-shot wrappers, and only when the engine is tracing.
	rid string
}

// Epoch reports the epoch this snapshot pinned.
func (s *Snapshot) Epoch() uint64 { return s.h.Epoch() }

// Release unpins the snapshot, letting writers proceed. Releasing twice is
// a no-op; using a released snapshot fails.
func (s *Snapshot) Release() { s.h.Release() }

func (s *Snapshot) check() error {
	if s.h.Released() {
		return errors.New("sti: snapshot already released")
	}
	if s.db.closed {
		return errClosed
	}
	if s.db.broken != nil {
		return s.db.broken
	}
	return nil
}

// Query returns the decoded rows of a relation matching a pattern. With no
// pattern, all rows are returned; otherwise one value per attribute, where
// nil is a wildcard and anything else must match (converted like
// Input.Add). Rows come back in a deterministic index order.
func (s *Snapshot) Query(name string, pattern ...any) ([][]any, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	decl, err := s.db.prog.decl(name)
	if err != nil {
		return nil, err
	}
	probe := make(tuple.Tuple, decl.Arity)
	mask := make([]bool, decl.Arity)
	if len(pattern) > 0 {
		if len(pattern) != decl.Arity {
			return nil, fmt.Errorf("sti: relation %s has arity %d, got a pattern of %d values", name, decl.Arity, len(pattern))
		}
		for i, v := range pattern {
			if v == nil {
				continue
			}
			w, err := s.db.prog.encode(decl.Types[i], v)
			if err != nil {
				return nil, fmt.Errorf("sti: %s argument %d: %v", name, i, err)
			}
			probe[i] = w
			mask[i] = true
		}
	}
	ts, err := s.db.eng.QueryReq(s.rid, name, probe, mask)
	if err != nil {
		return nil, err
	}
	return s.db.decodeRows(decl, ts), nil
}

// QueryText runs Query with text pattern fields ("_" is a wildcard; an
// empty pattern returns all rows) and returns rows rendered in fact-file
// form. It backs the sti serve line protocol.
func (s *Snapshot) QueryText(name string, pattern []string) ([][]string, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	decl, err := s.db.prog.decl(name)
	if err != nil {
		return nil, err
	}
	probe := make(tuple.Tuple, decl.Arity)
	mask := make([]bool, decl.Arity)
	if len(pattern) > 0 {
		if len(pattern) != decl.Arity {
			return nil, fmt.Errorf("sti: relation %s has arity %d, got a pattern of %d fields", name, decl.Arity, len(pattern))
		}
		for i, f := range pattern {
			if f == "_" {
				continue
			}
			v, err := eio.ParseField(f, decl.Types[i], s.db.prog.st)
			if err != nil {
				return nil, fmt.Errorf("sti: %s field %d: %v", name, i, err)
			}
			probe[i] = v
			mask[i] = true
		}
	}
	ts, err := s.db.eng.QueryReq(s.rid, name, probe, mask)
	if err != nil {
		return nil, err
	}
	out := make([][]string, 0, len(ts))
	for _, t := range ts {
		row := make([]string, len(t))
		for i, w := range t {
			row[i] = eio.FormatField(w, decl.Types[i], s.db.prog.st)
		}
		out = append(out, row)
	}
	return out, nil
}

// Scan returns the decoded rows of a relation whose first attribute lies
// in [lo, hi] (values converted like Input.Add), in primary-index order.
func (s *Snapshot) Scan(name string, lo, hi any) ([][]any, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	decl, err := s.db.prog.decl(name)
	if err != nil {
		return nil, err
	}
	if decl.Arity == 0 {
		return nil, fmt.Errorf("sti: relation %s has no attributes to range over", name)
	}
	loW, err := s.db.prog.encode(decl.Types[0], lo)
	if err != nil {
		return nil, fmt.Errorf("sti: %s lower bound: %v", name, err)
	}
	hiW, err := s.db.prog.encode(decl.Types[0], hi)
	if err != nil {
		return nil, fmt.Errorf("sti: %s upper bound: %v", name, err)
	}
	ts, err := s.db.eng.ScanRangeReq(s.rid, name, loW, hiW)
	if err != nil {
		return nil, err
	}
	return s.db.decodeRows(decl, ts), nil
}

// Size reports the number of tuples in a relation.
func (s *Snapshot) Size(name string) (int, error) {
	if err := s.check(); err != nil {
		return 0, err
	}
	if _, err := s.db.prog.decl(name); err != nil {
		return 0, err
	}
	return s.db.eng.Relation(name).Size(), nil
}

func (db *Database) decodeRows(decl *ram.Relation, ts []tuple.Tuple) [][]any {
	out := make([][]any, 0, len(ts))
	for _, t := range ts {
		row := make([]any, len(t))
		for i, w := range t {
			row[i] = db.prog.decode(decl.Types[i], w)
		}
		out = append(out, row)
	}
	return out
}

// Query is the one-shot form of Snapshot().Query: it pins a snapshot for
// the duration of the call. One-shot reads are instrumented: each gets a
// request ID joining the trace tree, and its latency lands in the query
// histogram partitioned by outcome (ok / miss / error).
func (db *Database) Query(name string, pattern ...any) ([][]any, error) {
	req := db.obs.Start(obsv.OpQuery, name)
	s := db.Snapshot()
	db.tagSnapshot(s, req)
	rows, err := s.Query(name, pattern...)
	s.Release()
	req.Finish(readOutcome(len(rows), err), db.readProf)
	return rows, err
}

// QueryText is the one-shot form of Snapshot().QueryText.
func (db *Database) QueryText(name string, pattern []string) ([][]string, error) {
	req := db.obs.Start(obsv.OpQuery, name)
	s := db.Snapshot()
	db.tagSnapshot(s, req)
	rows, err := s.QueryText(name, pattern)
	s.Release()
	req.Finish(readOutcome(len(rows), err), db.readProf)
	return rows, err
}

// Scan is the one-shot form of Snapshot().Scan.
func (db *Database) Scan(name string, lo, hi any) ([][]any, error) {
	req := db.obs.Start(obsv.OpScan, name)
	s := db.Snapshot()
	db.tagSnapshot(s, req)
	rows, err := s.Scan(name, lo, hi)
	s.Release()
	req.Finish(readOutcome(len(rows), err), db.readProf)
	return rows, err
}

// tagSnapshot stamps the request's ID onto the snapshot so the engine spans
// it produces join the trace. The ID string is only built when the engine is
// actually tracing — the common untraced path stays allocation-free.
func (db *Database) tagSnapshot(s *Snapshot, req obsv.Req) {
	if db.traced && req.Active() {
		s.rid = req.ID()
	}
}

// readOutcome classifies a finished read: errors are errors, zero rows is a
// miss, anything else is a hit.
func readOutcome(n int, err error) obsv.Outcome {
	switch {
	case err != nil:
		return obsv.OutError
	case n == 0:
		return obsv.OutMiss
	default:
		return obsv.OutOK
	}
}

// Size is the one-shot form of Snapshot().Size.
func (db *Database) Size(name string) (int, error) {
	s := db.Snapshot()
	defer s.Release()
	return s.Size(name)
}

// DBStats is a point-in-time summary of a resident database.
// AppliesIncremental counts batches absorbed through the update/delete
// entry points; AppliesFallback counts batches that lost the incremental
// path and recomputed from scratch, with FallbackReason explaining the most
// recent loss.
type DBStats struct {
	Epoch              uint64 `json:"epoch"`
	Applies            uint64 `json:"applies"`
	AppliesIncremental uint64 `json:"incremental_applies"`
	AppliesFallback    uint64 `json:"applies_fallback"`
	FallbackReason     string `json:"fallback_reason,omitempty"`
	Recomputes         uint64 `json:"recomputes"`
	Incremental        bool   `json:"incremental"`
	Deletable          bool   `json:"deletable"`
	// Shards is the shard count the database was opened with (0 when
	// unsharded). Sharded databases record a fallback reason on their
	// first Apply: batches recompute with the shard-parallel main program.
	Shards    int            `json:"shards,omitempty"`
	Relations map[string]int `json:"relations"`
	// FallbackReasons tallies every recompute fallback by reason (the
	// cumulative history behind FallbackReason, which only keeps the most
	// recent one).
	FallbackReasons map[string]uint64 `json:"fallback_reasons,omitempty"`
	// Requests carries the request-level latency series when the database
	// was opened WithObservability: per (op, outcome) histograms plus slow
	// and in-flight counters. Published through the expvar sti.db blob by
	// sti serve.
	Requests *obsv.Snapshot `json:"requests,omitempty"`
	// Persist summarizes the durable tier when the database was opened
	// WithPersistence: WAL/snapshot generations and counters, segment-store
	// shape, and the relations gated off the persistent tier with reasons.
	Persist *PersistStats `json:"persist,omitempty"`
}

// Stats reports apply counters and per-relation sizes under a snapshot.
func (db *Database) Stats() DBStats {
	s := db.Snapshot()
	defer s.Release()
	st := DBStats{
		Epoch:              s.Epoch(),
		Applies:            db.applies,
		AppliesIncremental: db.incremental,
		AppliesFallback:    db.recomputes,
		FallbackReason:     db.fallbackReason,
		Recomputes:         db.recomputes,
		Incremental:        db.eng.Incremental(),
		Deletable:          db.eng.Deletable(),
		Shards:             db.shards,
		Relations:          map[string]int{},
		Requests:           db.obs.Stats(),
	}
	for _, rd := range db.prog.ram.Relations {
		if !rd.Aux {
			st.Relations[rd.Name] = db.eng.Relation(rd.Name).Size()
		}
	}
	if len(db.fallbackCounts) > 0 {
		st.FallbackReasons = make(map[string]uint64, len(db.fallbackCounts))
		for reason, n := range db.fallbackCounts {
			st.FallbackReasons[reason] = n
		}
	}
	if db.pst != nil {
		st.Persist = db.pst.stats()
	}
	return st
}
