// Package sti is a Datalog engine built around the Soufflé Tree Interpreter
// design (Hu, Zhao, Jordan, Scholz: "An Efficient Interpreter for Datalog by
// De-specializing Relations", PLDI 2021).
//
// A Datalog program is parsed, analyzed, and translated to the RAM
// intermediate representation, then executed by one of three backends:
//
//   - the tree interpreter (the paper's contribution) with its four
//     optimizations individually switchable,
//   - a closure-compiled engine (the "synthesized" performance baseline),
//   - a true synthesizer emitting standalone specialized Go source.
//
// Quick start:
//
//	prog, err := sti.Parse(`
//	    .decl edge(x:number, y:number)
//	    .decl path(x:number, y:number)
//	    .input edge
//	    .output path
//	    path(x, y) :- edge(x, y).
//	    path(x, z) :- path(x, y), edge(y, z).
//	`)
//	in := prog.NewInput()
//	in.Add("edge", 1, 2)
//	in.Add("edge", 2, 3)
//	res, err := prog.Run(in)
//	fmt.Println(res.Size("path")) // 3
//
// Beyond one-shot Run, Program.Open keeps the materialized relations
// resident: Apply absorbs fact batches (incrementally when the program
// allows; see Database), readers take epoch-pinned snapshots, and
// WithWorkers / WithShards select parallel and shard-parallel fixpoint
// evaluation. docs/ARCHITECTURE.md walks the whole pipeline;
// docs/OPERATIONS.md covers the resident engine's CLI surface.
package sti

import (
	"errors"
	"fmt"
	"strings"

	"sti/internal/ast2ram"
	"sti/internal/eio"
	"sti/internal/parser"
	"sti/internal/ram"
	"sti/internal/ramopt"
	"sti/internal/sema"
	"sti/internal/symtab"
	"sti/internal/tuple"
	"sti/internal/value"
)

// Program is a compiled-to-RAM Datalog program, ready to run under any
// backend.
type Program struct {
	sem *sema.Program
	ram *ram.Program
	st  *symtab.Table
	// hash identifies the source text (SHA-256, hex). The durability layer
	// stamps it into a data directory's MANIFEST so a directory written by
	// one program is never replayed under another.
	hash string
}

// Parse parses, semantically checks, and translates a Datalog program.
func Parse(source string) (*Program, error) {
	astProg, err := parser.Parse(source)
	if err != nil {
		return nil, err
	}
	semProg, errs := sema.Analyze(astProg)
	if len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return nil, errors.New(strings.Join(msgs, "\n"))
	}
	st := symtab.New()
	ramProg, err := ast2ram.Translate(semProg, st)
	if err != nil {
		return nil, err
	}
	return &Program{sem: semProg, ram: ramProg, st: st, hash: programHash(source)}, nil
}

// Optimize runs the RAM optimization passes (constant folding, filter
// fusion, choice conversion, index pruning) on the program in place and
// returns it. Dead code elimination is deliberately excluded: Result keeps
// every relation queryable after Run, so no relation is dead here.
func (p *Program) Optimize() *Program {
	ramopt.Optimize(p.ram, p.st, ramopt.Queryable())
	return p
}

// MustParse is Parse that panics on error, for examples and tests.
func MustParse(source string) *Program {
	p, err := Parse(source)
	if err != nil {
		panic(err)
	}
	return p
}

// RAM renders the program's RAM intermediate representation.
func (p *Program) RAM() string { return p.ram.String() }

// EmitGo emits the synthesized standalone Go source for the program (see
// internal/codegen for the toolchain workflow).
func (p *Program) EmitGo() ([]byte, error) {
	return codegenEmit(p.ram, p.st)
}

// Relations lists the program's declared (non-auxiliary) relation names in
// declaration order.
func (p *Program) Relations() []string {
	var out []string
	for _, r := range p.ram.Relations {
		if !r.Aux {
			out = append(out, r.Name)
		}
	}
	return out
}

// decl finds a source relation declaration.
func (p *Program) decl(name string) (*ram.Relation, error) {
	for _, r := range p.ram.Relations {
		if r.Name == name && !r.Aux {
			return r, nil
		}
	}
	return nil, fmt.Errorf("sti: unknown relation %q", name)
}

// --- input ---

// Input carries the extensional database for one run. It converts Go values
// to the engine's 32-bit words according to each relation's declared
// attribute types.
type Input struct {
	prog *Program
	mem  *eio.Mem
	err  error
}

// NewInput returns an empty input set for the program.
func (p *Program) NewInput() *Input {
	return &Input{prog: p, mem: eio.NewMem()}
}

// Add appends one tuple to relation name. Accepted Go types per attribute:
// number: int/int32/int64; unsigned: uint/uint32/uint64/int (non-negative);
// float: float32/float64; symbol: string. The first conversion error is
// remembered and returned by Err (and by Program.Run).
func (in *Input) Add(name string, values ...any) *Input {
	if in.err != nil {
		return in
	}
	decl, err := in.prog.decl(name)
	if err != nil {
		in.err = err
		return in
	}
	if len(values) != decl.Arity {
		in.err = fmt.Errorf("sti: relation %s has arity %d, got %d values", name, decl.Arity, len(values))
		return in
	}
	t := make(tuple.Tuple, decl.Arity)
	for i, v := range values {
		w, err := in.prog.encode(decl.Types[i], v)
		if err != nil {
			in.err = fmt.Errorf("sti: %s argument %d: %v", name, i, err)
			return in
		}
		t[i] = w
	}
	in.mem.Facts[name] = append(in.mem.Facts[name], t)
	return in
}

// Err returns the first conversion error, if any.
func (in *Input) Err() error { return in.err }

func (p *Program) encode(ty value.Type, v any) (value.Value, error) {
	switch ty {
	case value.Symbol:
		s, ok := v.(string)
		if !ok {
			return 0, fmt.Errorf("want string, got %T", v)
		}
		return p.st.Intern(s), nil
	case value.Float:
		switch f := v.(type) {
		case float32:
			return value.FromFloat(f), nil
		case float64:
			return value.FromFloat(float32(f)), nil
		}
		return 0, fmt.Errorf("want float, got %T", v)
	case value.Unsigned:
		switch n := v.(type) {
		case uint:
			return value.Value(n), nil
		case uint32:
			return n, nil
		case uint64:
			return value.Value(n), nil
		case int:
			if n < 0 {
				return 0, fmt.Errorf("negative value %d for unsigned attribute", n)
			}
			return value.Value(n), nil
		}
		return 0, fmt.Errorf("want unsigned, got %T", v)
	default: // Number
		switch n := v.(type) {
		case int:
			return value.FromInt(int32(n)), nil
		case int32:
			return value.FromInt(n), nil
		case int64:
			return value.FromInt(int32(n)), nil
		}
		return 0, fmt.Errorf("want number, got %T", v)
	}
}

func (p *Program) decode(ty value.Type, w value.Value) any {
	switch ty {
	case value.Symbol:
		return p.st.Resolve(w)
	case value.Float:
		return value.AsFloat(w)
	case value.Unsigned:
		return uint32(w)
	default:
		return value.AsInt(w)
	}
}
