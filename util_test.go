package sti

import (
	"os"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
