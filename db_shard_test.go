package sti

import (
	"strings"
	"testing"
)

// TestShardedRun: a one-shot Run with WithShards matches the unsharded run
// byte for byte.
func TestShardedRun(t *testing.T) {
	p := tcProgram(t, "btree")
	edges := [][2]int{}
	for i := 0; i < 30; i++ {
		edges = append(edges, [2]int{i, i + 1})
		edges = append(edges, [2]int{i, (i * 7) % 30})
	}
	want := runUnion(t, p, edges)

	in := p.NewInput()
	for _, e := range edges {
		in.Add("edge", e[0], e[1])
	}
	res, err := p.Run(in, WithShards(4))
	if err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	got := res.Rows("path")
	if len(got) != len(want) {
		t.Fatalf("sharded run: %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("row %d differs: %v vs %v", i, got[i], want[i])
			}
		}
	}
}

// TestShardedDatabaseFallsBack: a database opened with WithShards answers
// queries correctly, but every Apply takes the recompute path with the
// sharded fallback reason recorded in Stats — the incremental entry points
// are generated for unsharded execution.
func TestShardedDatabaseFallsBack(t *testing.T) {
	p := tcProgram(t, "btree")
	db, err := p.Open(WithShards(4))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()

	if st := db.Stats(); st.Shards != 4 {
		t.Fatalf("Stats().Shards = %d, want 4", st.Shards)
	}

	edges := [][2]int{}
	for i := 0; i < 20; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	b := db.NewBatch()
	for _, e := range edges {
		b.Add("edge", e[0], e[1])
	}
	if err := db.Apply(b); err != nil {
		t.Fatalf("apply: %v", err)
	}
	checkEquivalent(t, db, p, edges, "sharded apply")

	st := db.Stats()
	if st.AppliesIncremental != 0 {
		t.Fatalf("sharded database took the incremental path (%d)", st.AppliesIncremental)
	}
	if st.AppliesFallback != 1 || st.Recomputes != 1 {
		t.Fatalf("fallback=%d recomputes=%d, want 1/1", st.AppliesFallback, st.Recomputes)
	}
	if !strings.Contains(st.FallbackReason, "sharded") {
		t.Fatalf("FallbackReason = %q, want the sharded reason", st.FallbackReason)
	}

	// Deletions recompute too, staying correct.
	b2 := db.NewBatch()
	b2.Add("edge", 50, 51)
	b2.Delete("edge", 0, 1)
	if err := db.Apply(b2); err != nil {
		t.Fatalf("apply 2: %v", err)
	}
	edges = append(edges[1:], [2]int{50, 51})
	checkEquivalent(t, db, p, edges, "sharded delete")
	if st := db.Stats(); st.Recomputes != 2 {
		t.Fatalf("recomputes = %d, want 2", st.Recomputes)
	}
}

// TestUnshardedDatabaseStaysIncremental guards the other side: without
// WithShards the incremental path is untouched by the sharding machinery.
func TestUnshardedDatabaseStaysIncremental(t *testing.T) {
	p := tcProgram(t, "btree")
	db, err := p.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	b := db.NewBatch().Add("edge", 1, 2).Add("edge", 2, 3)
	if err := db.Apply(b); err != nil {
		t.Fatalf("apply: %v", err)
	}
	st := db.Stats()
	if st.Shards != 0 {
		t.Fatalf("Shards = %d, want 0", st.Shards)
	}
	if st.AppliesIncremental != 1 {
		t.Fatalf("incremental applies = %d, want 1", st.AppliesIncremental)
	}
}
